// Serve suite (ctest -L serve): the routing-as-a-service daemon. Covers the
// wire protocol (every response self-validates with the same obs JSON parser
// the bench schema gate uses), admission control (queue-full / rate-limit
// rejections are typed, never dropped), deadlines (graceful budget mapping
// plus the watchdog's hard cancel), the retry-then-degrade sequencing of the
// route handler, session LRU eviction, worker-count determinism, and the
// serve.* chaos sites. The acceptance gate lives at the bottom: a seeded
// mixed load of 200+ requests with every serve.* and pipeline fault site
// armed must end with zero crashes, every failure typed, and the accounting
// invariant offered = succeeded + rejected + failed intact.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "design/generator.hpp"
#include "design/io.hpp"
#include "obs/obs.hpp"
#include "serve/flight.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"
#include "util/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace dgr {
namespace {

using obs::json::Value;
using serve::Op;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerOptions;
using serve::SessionCache;
using serve::SessionCacheOptions;
using util::fault::FaultPlan;
using util::fault::ScopedPlan;

#define SKIP_WITHOUT_HOOKS()                                    \
  if (!util::fault::compiled_in()) {                            \
    GTEST_SKIP() << "built with -DDGR_FAULT_INJECTION=OFF";     \
  }

design::Design serve_design(std::uint64_t seed = 77, int grid = 10, int nets = 40) {
  design::IspdLikeParams p;
  p.name = "serve_small";
  p.grid_w = p.grid_h = grid;
  p.num_nets = nets;
  p.layers = 4;
  p.tracks_per_layer = 3;
  return design::generate_ispd_like(p, seed);
}

std::string design_text(const design::Design& d) {
  std::ostringstream os;
  design::write_design(os, d);
  return os.str();
}

std::string load_line(const std::string& id, const std::string& session,
                      const std::string& text, std::uint64_t seed = 0) {
  Value v = Value::object();
  v["id"] = id;
  v["op"] = "load";
  v["session"] = session;
  v["design"] = text;
  if (seed != 0) v["seed"] = static_cast<std::int64_t>(seed);
  return v.dump(0);
}

struct RouteSpec {
  std::string id;
  std::string session;
  std::string router;
  std::string fallback;
  std::uint64_t seed = 0;  ///< 0 = omit the field
  double deadline_ms = 0.0;
  int iterations = 0;
  int partitions = 0;  ///< 0 = omit the field
  bool telemetry = false;
};

std::string route_line(const RouteSpec& s) {
  Value v = Value::object();
  v["id"] = s.id;
  v["op"] = "route";
  v["session"] = s.session;
  if (!s.router.empty()) v["router"] = s.router;
  if (!s.fallback.empty()) v["fallback"] = s.fallback;
  if (s.seed != 0) v["seed"] = static_cast<std::int64_t>(s.seed);
  if (s.deadline_ms > 0.0) v["deadline_ms"] = s.deadline_ms;
  if (s.iterations > 0) v["iterations"] = s.iterations;
  if (s.partitions > 0) v["partitions"] = s.partitions;
  if (s.telemetry) v["telemetry"] = true;
  return v.dump(0);
}

/// Parses a response line and checks the envelope invariants. Never returns
/// an unvalidated document: a malformed response is a test failure.
Value expect_valid_response(const std::string& line) {
  Value doc;
  std::string err;
  EXPECT_TRUE(Value::parse(line, &doc, &err)) << err << "\n" << line;
  std::string verr;
  EXPECT_TRUE(serve::validate_response_json(doc, &verr)) << verr << "\n" << line;
  return doc;
}

bool response_ok(const Value& doc) {
  const Value* ok = doc.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_code(const Value& doc) {
  const Value* err = doc.find("error");
  if (err == nullptr) return "";
  const Value* code = err->find("code");
  return code != nullptr && code->is_string() ? code->as_string() : "";
}

void expect_accounting_invariant(const Server& server) {
  const Server::Accounting a = server.accounting();
  EXPECT_EQ(a.offered, a.succeeded + a.rejected + a.failed)
      << "offered=" << a.offered << " succeeded=" << a.succeeded
      << " rejected=" << a.rejected << " failed=" << a.failed;
}

// ---------------------------------------------------------------------------
// Protocol: request parsing
// ---------------------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripAllOps) {
  {
    const Result<Request> r = serve::parse_request(R"({"id":"p","op":"ping"})");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r.value().op, Op::kPing);
    EXPECT_EQ(r.value().id, "p");
  }
  {
    const Result<Request> r = serve::parse_request(
        R"({"id":"l","op":"load","session":"s1","design":"dgrd 1\n...","seed":9})");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r.value().op, Op::kLoad);
    EXPECT_EQ(r.value().session, "s1");
    EXPECT_TRUE(r.value().has_seed);
    EXPECT_EQ(r.value().seed, 9u);
  }
  {
    const Result<Request> r = serve::parse_request(
        R"({"id":"r","op":"route","session":"s1","router":"dgr","fallback":"none",)"
        R"("deadline_ms":250,"iterations":40,"telemetry":true,"keep":false})");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    const Request& req = r.value();
    EXPECT_EQ(req.op, Op::kRoute);
    EXPECT_EQ(req.router, "dgr");
    EXPECT_EQ(req.fallback, "none");
    EXPECT_EQ(req.deadline_ms, 250.0);
    EXPECT_EQ(req.iterations, 40);
    EXPECT_TRUE(req.telemetry);
    EXPECT_FALSE(req.keep);
  }
  {
    const Result<Request> r = serve::parse_request(
        R"({"id":"e","op":"eco","session":"s1","mutation":{"generate":true,"seed":5}})");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_TRUE(r.value().has_mutation);
    EXPECT_TRUE(r.value().generate_mutation);
    EXPECT_EQ(r.value().mutation_seed, 5u);
  }
  for (const char* op : {"stats", "shutdown"}) {
    const Result<Request> r =
        serve::parse_request(std::string(R"({"id":"c","op":")") + op + "\"}");
    ASSERT_TRUE(r.ok()) << op;
  }
}

TEST(ServeProtocol, MalformedAndInvalidRequestsAreTyped) {
  // Not JSON at all / not an object: kParseError.
  EXPECT_EQ(serve::parse_request("{oops").status().code(), StatusCode::kParseError);
  EXPECT_EQ(serve::parse_request("[1,2]").status().code(), StatusCode::kParseError);
  // Well-formed JSON with a type-broken field: kParseError, not a guess.
  EXPECT_EQ(serve::parse_request(R"({"id":7,"op":"ping"})").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      serve::parse_request(R"({"id":"r","op":"route","session":"s","seed":"x"})")
          .status()
          .code(),
      StatusCode::kParseError);
  // Semantically invalid requests: kInvalidArgument.
  EXPECT_EQ(serve::parse_request(R"({"id":"x","op":"warp"})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id":"x"})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id":"l","op":"load","session":"s"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(
                R"({"id":"l","op":"load","session":"s","design":"d","path":"p"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id":"r","op":"route"})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id":"e","op":"eco","session":"s"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(
                R"({"id":"r","op":"route","session":"s","deadline_ms":-1})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, PartitionsFieldParsesAndRejectsBadValues) {
  {
    const Result<Request> r = serve::parse_request(
        R"({"id":"r","op":"route","session":"s","partitions":4})");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_TRUE(r.value().has_partitions);
    EXPECT_EQ(r.value().partitions, 4);
  }
  {
    // Absent field: has_partitions stays false (server default applies).
    const Result<Request> r =
        serve::parse_request(R"({"id":"r","op":"route","session":"s"})");
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().has_partitions);
  }
  // Out-of-range and non-integer values: typed kInvalidArgument.
  for (const char* bad : {"0", "-2", "65", "2.5"}) {
    const std::string line =
        std::string(R"({"id":"r","op":"route","session":"s","partitions":)") +
        bad + "}";
    EXPECT_EQ(serve::parse_request(line).status().code(),
              StatusCode::kInvalidArgument)
        << bad;
  }
  // Type-broken field: kParseError like every other field.
  EXPECT_EQ(serve::parse_request(
                R"({"id":"r","op":"route","session":"s","partitions":"four"})")
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(ServeProtocol, RecoverRequestIdIsBestEffort) {
  EXPECT_EQ(serve::recover_request_id(R"({"id":"r9","op":"warp"})"), "r9");
  EXPECT_EQ(serve::recover_request_id("{truncated"), "");
  EXPECT_EQ(serve::recover_request_id(R"({"id":42})"), "");
}

TEST(ServeProtocol, MutationPayloadsParse) {
  auto parse = [](const std::string& text) {
    Value doc;
    EXPECT_TRUE(Value::parse(text, &doc));
    return serve::parse_mutation(doc);
  };
  {
    const Result<design::Mutation> m =
        parse(R"({"kind":"add_blockage","rect":[2,2,5,5],"scale":0.25})");
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    EXPECT_EQ(m.value().kind, design::MutationKind::kAddBlockage);
    EXPECT_EQ(m.value().label, "serve:add_blockage");
    EXPECT_FLOAT_EQ(m.value().blockage.scale, 0.25f);
  }
  {
    const Result<design::Mutation> m = parse(R"({"kind":"remove_nets","nets":[3,1]})");
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    EXPECT_EQ(m.value().nets.size(), 2u);
  }
  {
    const Result<design::Mutation> m = parse(
        R"({"kind":"move_pins","nets":[0],"pins":[[[1,1],[2,3]]]})");
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    ASSERT_EQ(m.value().new_pins.size(), 1u);
    EXPECT_EQ(m.value().new_pins[0].size(), 2u);
  }
  {
    const Result<design::Mutation> m = parse(
        R"({"kind":"add_nets","add":[{"name":"nx","pins":[[0,0],[4,4]],"class":1}]})");
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    ASSERT_EQ(m.value().added.size(), 1u);
    EXPECT_EQ(m.value().added[0].name, "nx");
  }
  // Hostile payloads: typed kInvalidArgument, never a crash.
  EXPECT_EQ(parse(R"({"kind":"warp"})").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(parse(R"({"kind":"add_blockage","rect":[5,5,2,2],"scale":0.5})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse(R"({"kind":"add_blockage","rect":[0,0,2,2],"scale":7})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse(R"({"kind":"reweight_class","class":0,"weight":0})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse(R"({"kind":"move_pins","nets":[0,1],"pins":[[[1,1]]]})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Protocol: response envelope
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ResponseEnvelopeSerializesAndValidates) {
  {
    Response r;
    r.id = "r1";
    r.op = "route";
    r.result = Value::object();
    r.result["router"] = "dgr";
    const Value doc = expect_valid_response(serve::serialize_response(r));
    EXPECT_TRUE(response_ok(doc));
    EXPECT_EQ(doc.find("id")->as_string(), "r1");
    EXPECT_EQ(doc.find("result")->find("router")->as_string(), "dgr");
  }
  {
    const Response r = serve::error_response(
        "r2", "route", Status(StatusCode::kStageTimeout, "deadline expired"));
    const Value doc = expect_valid_response(serve::serialize_response(r));
    EXPECT_FALSE(response_ok(doc));
    EXPECT_EQ(error_code(doc), "STAGE_TIMEOUT");
  }
}

TEST(ServeProtocol, ResponseValidatorRejectsBrokenEnvelopes) {
  auto validate = [](const std::string& text) {
    Value doc;
    EXPECT_TRUE(Value::parse(text, &doc));
    return serve::validate_response_json(doc);
  };
  EXPECT_FALSE(validate(R"({"id":"r","op":"x"})"));                       // no ok
  EXPECT_FALSE(validate(R"({"id":"r","op":"x","ok":true})"));             // no result
  EXPECT_FALSE(validate(R"({"id":"r","op":"x","ok":false})"));            // no error
  EXPECT_FALSE(validate(R"({"id":"r","op":"x","ok":true,"result":{},"error":{}})"));
  EXPECT_FALSE(validate(R"({"id":"r","op":"x","ok":false,"error":{"code":"E"}})"));
  EXPECT_FALSE(validate(R"({"op":"x","ok":true,"result":{}})"));          // no id
  EXPECT_TRUE(validate(
      R"({"id":"r","op":"x","ok":false,"error":{"code":"E","message":"m"}})"));
}

// ---------------------------------------------------------------------------
// Server: request life cycle
// ---------------------------------------------------------------------------

TEST(ServeServer, PingLoadRouteEcoStatsLifecycle) {
  ServerOptions options;
  options.workers = 2;
  options.default_iterations = 20;
  Server server(options);
  server.start();

  const Value pong = expect_valid_response(server.call(R"({"id":"p","op":"ping"})"));
  ASSERT_TRUE(response_ok(pong));
  EXPECT_TRUE(pong.find("result")->find("pong")->as_bool());

  const design::Design d = serve_design();
  const Value loaded =
      expect_valid_response(server.call(load_line("l1", "s1", design_text(d), 4)));
  ASSERT_TRUE(response_ok(loaded)) << error_code(loaded);
  EXPECT_EQ(loaded.find("result")->find("session")->as_string(), "s1");
  EXPECT_EQ(loaded.find("result")->find("nets")->as_number(),
            static_cast<double>(d.net_count()));

  RouteSpec spec;
  spec.id = "r1";
  spec.session = "s1";
  spec.router = "dgr";
  spec.seed = 4;
  spec.telemetry = true;
  const Value routed = expect_valid_response(server.call(route_line(spec)));
  ASSERT_TRUE(response_ok(routed)) << error_code(routed);
  const Value* result = routed.find("result");
  EXPECT_EQ(result->find("router")->as_string(), "dgr");
  EXPECT_FALSE(result->find("degraded")->as_bool());
  EXPECT_GT(result->find("metrics")->find("wirelength")->as_number(), 0.0);
  ASSERT_NE(result->find("telemetry"), nullptr);
  EXPECT_GT(result->find("telemetry")->find("samples")->as_number(), 0.0);

  const Value eco = expect_valid_response(server.call(
      R"({"id":"e1","op":"eco","session":"s1","mutation":{"generate":true,"seed":7}})"));
  ASSERT_TRUE(response_ok(eco)) << error_code(eco);
  EXPECT_EQ(eco.find("result")->find("applied")->as_number(), 1.0);

  const Value stats = expect_valid_response(server.call(R"({"id":"st","op":"stats"})"));
  ASSERT_TRUE(response_ok(stats));
  const Value* acct = stats.find("result")->find("accounting");
  ASSERT_NE(acct, nullptr);
  // The published snapshot is itself self-consistent.
  EXPECT_EQ(acct->find("offered")->as_number(),
            acct->find("succeeded")->as_number() + acct->find("rejected")->as_number() +
                acct->find("failed")->as_number());

  const Value bye = expect_valid_response(server.call(R"({"id":"q","op":"shutdown"})"));
  ASSERT_TRUE(response_ok(bye));
  EXPECT_TRUE(server.stop_requested());

  server.shutdown(true);
  expect_accounting_invariant(server);
  const Server::Accounting a = server.accounting();
  EXPECT_EQ(a.offered, 6);
  EXPECT_EQ(a.succeeded, 6);
}

TEST(ServeServer, UnknownSessionRouterAndBadDesignAreTyped) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.start();

  RouteSpec ghost;
  ghost.id = "g";
  ghost.session = "ghost";
  const Value miss = expect_valid_response(server.call(route_line(ghost)));
  EXPECT_FALSE(response_ok(miss));
  EXPECT_EQ(error_code(miss), "NOT_FOUND");

  const design::Design d = serve_design();
  ASSERT_TRUE(response_ok(
      expect_valid_response(server.call(load_line("l", "s1", design_text(d))))));
  RouteSpec bad;
  bad.id = "b";
  bad.session = "s1";
  bad.router = "warp-router";
  const Value unknown = expect_valid_response(server.call(route_line(bad)));
  EXPECT_FALSE(response_ok(unknown));
  EXPECT_EQ(error_code(unknown), "INVALID_ARGUMENT");

  const Value garbage = expect_valid_response(
      server.call(load_line("m", "s2", "dgrd 1\ndesign t\ngrid -1")));
  EXPECT_FALSE(response_ok(garbage));
  EXPECT_EQ(error_code(garbage), "PARSE_ERROR");

  // A design over the configured caps is kInvalidDesign end to end.
  ServerOptions capped;
  capped.workers = 1;
  capped.design_limits.max_nets = 4;
  Server small(capped);
  small.start();
  const Value rejected = expect_valid_response(
      small.call(load_line("cap", "s1", design_text(d))));
  EXPECT_FALSE(response_ok(rejected));
  EXPECT_EQ(error_code(rejected), "INVALID_DESIGN");
  small.shutdown(true);

  server.shutdown(true);
  expect_accounting_invariant(server);
}

TEST(ServeServer, PartitionsOptionRoutesThroughPartitionedEngine) {
  ServerOptions options;
  options.workers = 1;
  options.default_iterations = 20;
  Server server(options);
  server.start();

  const design::Design d = serve_design();
  ASSERT_TRUE(response_ok(
      expect_valid_response(server.call(load_line("l", "s1", design_text(d), 4)))));

  // partitions >= 2 reroutes the request through the "partitioned" engine
  // with the requested router as its region router.
  RouteSpec part;
  part.id = "p2";
  part.session = "s1";
  part.router = "cugr2-lite";
  part.seed = 11;
  part.partitions = 2;
  const Value routed = expect_valid_response(server.call(route_line(part)));
  ASSERT_TRUE(response_ok(routed)) << error_code(routed);
  const Value* result = routed.find("result");
  EXPECT_EQ(result->find("router")->as_string(), "partitioned");
  EXPECT_EQ(result->find("partitions")->as_number(), 2.0);

  // partitions == 1 forces a sequential route even if the server had a
  // partitioned default.
  RouteSpec seq;
  seq.id = "p1";
  seq.session = "s1";
  seq.router = "cugr2-lite";
  seq.partitions = 1;
  const Value plain = expect_valid_response(server.call(route_line(seq)));
  ASSERT_TRUE(response_ok(plain)) << error_code(plain);
  EXPECT_EQ(plain.find("result")->find("router")->as_string(), "cugr2-lite");
  EXPECT_EQ(plain.find("result")->find("partitions")->as_number(), 1.0);

  // Warm-start-only routers cannot be wrapped in a partitioned run.
  RouteSpec maze;
  maze.id = "pm";
  maze.session = "s1";
  maze.router = "maze-refine";
  maze.partitions = 2;
  const Value refused = expect_valid_response(server.call(route_line(maze)));
  EXPECT_FALSE(response_ok(refused));
  EXPECT_EQ(error_code(refused), "INVALID_ARGUMENT");

  // "stats" publishes the active partition configuration.
  const Value stats = expect_valid_response(server.call(R"({"id":"st","op":"stats"})"));
  ASSERT_TRUE(response_ok(stats));
  const Value* partition = stats.find("result")->find("partition");
  ASSERT_NE(partition, nullptr);
  EXPECT_EQ(partition->find("default_partitions")->as_number(), 1.0);
  EXPECT_GE(partition->find("halo")->as_number(), 0.0);
  EXPECT_NE(partition->find("seeding"), nullptr);
  EXPECT_NE(partition->find("region_router"), nullptr);

  server.shutdown(true);
  expect_accounting_invariant(server);
}

TEST(ServeServer, QueueFullRejectionIsTyped) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  Server server(options);  // not started: admission outcomes are deterministic

  std::mutex mu;
  std::vector<std::string> rejected_lines;
  RouteSpec spec;
  spec.session = "nobody";
  spec.id = "q0";
  server.submit(route_line(spec), [](const std::string&) {});  // fills the queue
  for (int i = 1; i <= 3; ++i) {
    spec.id = "q" + std::to_string(i);
    server.submit(route_line(spec), [&](const std::string& response) {
      std::lock_guard<std::mutex> lock(mu);
      rejected_lines.push_back(response);
    });
  }
  ASSERT_EQ(rejected_lines.size(), 3u);  // rejections answer inline
  for (const std::string& line : rejected_lines) {
    const Value doc = expect_valid_response(line);
    EXPECT_FALSE(response_ok(doc));
    EXPECT_EQ(error_code(doc), "RESOURCE_EXHAUSTED");
    EXPECT_NE(doc.find("error")->find("message")->as_string().find("queue full"),
              std::string::npos);
  }

  server.start();  // drains the one queued job (NOT_FOUND -> failed)
  server.shutdown(true);
  const Server::Accounting a = server.accounting();
  EXPECT_EQ(a.offered, 4);
  EXPECT_EQ(a.rejected, 3);
  EXPECT_EQ(a.failed, 1);
  expect_accounting_invariant(server);
}

TEST(ServeServer, RateLimiterRejectsBeyondBurst) {
  ServerOptions options;
  options.workers = 1;
  options.rate_limit_per_sec = 1e-9;  // effectively no refill within the test
  options.rate_burst = 2.0;
  Server server(options);
  server.start();  // initialises the token bucket

  std::mutex mu;
  std::vector<std::string> responses(4);
  RouteSpec spec;
  spec.session = "nobody";
  for (int i = 0; i < 4; ++i) {
    spec.id = "r" + std::to_string(i);
    const int slot = i;
    server.submit(route_line(spec), [&, slot](const std::string& response) {
      std::lock_guard<std::mutex> lock(mu);
      responses[slot] = response;
    });
  }
  server.shutdown(true);

  int rate_limited = 0;
  for (const std::string& line : responses) {
    ASSERT_FALSE(line.empty());
    const Value doc = expect_valid_response(line);
    EXPECT_FALSE(response_ok(doc));
    if (error_code(doc) == "RESOURCE_EXHAUSTED") ++rate_limited;
  }
  EXPECT_EQ(rate_limited, 2);  // burst of 2 admitted, the rest refused
  const Server::Accounting a = server.accounting();
  EXPECT_EQ(a.rejected, 2);
  expect_accounting_invariant(server);
}

TEST(ServeServer, DeadlineCancelsMidTrainWithoutFallback) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.start();

  const design::Design d = serve_design(5, 16, 90);
  ASSERT_TRUE(response_ok(
      expect_valid_response(server.call(load_line("l", "s1", design_text(d))))));

  // An iteration count that cannot finish inside the deadline, and
  // degradation disabled for the request: the typed timeout must surface.
  RouteSpec spec;
  spec.id = "slow";
  spec.session = "s1";
  spec.router = "dgr";
  spec.fallback = "none";
  spec.iterations = 200000;
  spec.deadline_ms = 60.0;
  const auto start = std::chrono::steady_clock::now();
  const Value doc = expect_valid_response(server.call(route_line(spec)));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(response_ok(doc));
  EXPECT_EQ(error_code(doc), "STAGE_TIMEOUT");
  // The watchdog is the hard backstop: the request cannot run to the full
  // iteration count (which would take tens of seconds).
  EXPECT_LT(elapsed_ms, 10000.0);

  server.shutdown(true);
  expect_accounting_invariant(server);
}

TEST(ServeServer, QueuedPastDeadlineJobFailsTyped) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);  // not started: the job waits in the queue

  std::mutex mu;
  std::string response;
  RouteSpec spec;
  spec.id = "late";
  spec.session = "s1";
  spec.deadline_ms = 5.0;
  server.submit(route_line(spec), [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    response = line;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.start();
  server.shutdown(true);

  ASSERT_FALSE(response.empty());
  const Value doc = expect_valid_response(response);
  EXPECT_FALSE(response_ok(doc));
  EXPECT_EQ(error_code(doc), "STAGE_TIMEOUT");
  expect_accounting_invariant(server);
}

TEST(ServeServer, ShutdownCancelAnswersQueuedJobsTyped) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);  // never started: everything stays queued

  std::mutex mu;
  std::vector<std::string> responses;
  RouteSpec spec;
  spec.session = "s1";
  for (int i = 0; i < 3; ++i) {
    spec.id = "c" + std::to_string(i);
    server.submit(route_line(spec), [&](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(line);
    });
  }
  server.shutdown(/*drain=*/false);
  ASSERT_EQ(responses.size(), 3u);
  for (const std::string& line : responses) {
    const Value doc = expect_valid_response(line);
    EXPECT_FALSE(response_ok(doc));
    EXPECT_EQ(error_code(doc), "CANCELLED");
  }
  // Submissions after shutdown are rejected, still with a valid envelope.
  const Value late = expect_valid_response(server.call(R"({"id":"x","op":"ping"})"));
  EXPECT_FALSE(response_ok(late));
  EXPECT_EQ(error_code(late), "CANCELLED");
  const Server::Accounting a = server.accounting();
  EXPECT_EQ(a.offered, 4);
  EXPECT_EQ(a.failed, 3);
  EXPECT_EQ(a.rejected, 1);
  expect_accounting_invariant(server);
}

// ---------------------------------------------------------------------------
// Server: retry-then-degrade sequencing + attempts propagation
// ---------------------------------------------------------------------------

TEST(ServeServer, RetryThenDegradeSequencing) {
  SKIP_WITHOUT_HOOKS();
  obs::metrics().reset();
  ServerOptions options;
  options.workers = 1;
  options.max_attempts = 2;
  options.default_iterations = 20;
  options.router_options.dgr.max_rollbacks = 1;
  options.router_options.dgr.temperature_interval = 10;
  Server server(options);
  server.start();

  const design::Design d = serve_design();
  ASSERT_TRUE(response_ok(
      expect_valid_response(server.call(load_line("l", "s1", design_text(d))))));

  // Every gradient step sees a NaN: attempt 1 surfaces the divergence for a
  // reseeded retry, attempt 2 diverges again and degrades to cugr2-lite.
  ScopedPlan chaos(FaultPlan{7, {{"core.grad", 1.0, -1}}});
  RouteSpec spec;
  spec.id = "r";
  spec.session = "s1";
  spec.router = "dgr";
  spec.seed = 3;
  spec.telemetry = true;
  const Value doc = expect_valid_response(server.call(route_line(spec)));
  ASSERT_TRUE(response_ok(doc)) << error_code(doc);
  const Value* result = doc.find("result");
  EXPECT_TRUE(result->find("degraded")->as_bool());
  EXPECT_EQ(result->find("attempts")->as_number(), 2.0);
  EXPECT_EQ(result->find("router")->as_string(), "dgr");
  // The reseed is visible: final attempt trained with seed + stride.
  EXPECT_NE(result->find("seed")->as_number(), 3.0);
  EXPECT_EQ(obs::metrics().counter("serve.requests.retries").value(), 1);
  EXPECT_EQ(obs::metrics().counter("serve.requests.degraded").value(), 1);

  // Satellite: the degraded response keeps the failed attempt's record —
  // the dgr attempt with its typed divergence and rollback count (an
  // all-NaN run has no healthy steps, so no telemetry samples survive the
  // rollback rewinds), then the fallback attempt that produced the answer.
  const Value* attempts = result->find("stats")->find("route_attempts");
  ASSERT_NE(attempts, nullptr);
  ASSERT_GE(attempts->items().size(), 2u);
  const Value& failed = attempts->items().front();
  EXPECT_EQ(failed.find("router")->as_string(), "dgr");
  EXPECT_EQ(failed.find("status")->as_string(), "NUMERIC_DIVERGENCE");
  EXPECT_GE(failed.find("rollbacks")->as_number(), 1.0);
  const Value& winner = attempts->items().back();
  EXPECT_EQ(winner.find("router")->as_string(), "cugr2-lite");
  EXPECT_EQ(winner.find("status")->as_string(), "OK");

  server.shutdown(true);
  expect_accounting_invariant(server);
}

// ---------------------------------------------------------------------------
// Server: worker-count determinism
// ---------------------------------------------------------------------------

TEST(ServeServer, WorkerCountsProduceBitwiseIdenticalResponses) {
  const int kSessions = 6;
  std::vector<std::string> designs;
  for (int s = 0; s < kSessions; ++s) {
    designs.push_back(design_text(serve_design(100 + s, 8, 24)));
  }
  const char* routers[] = {"dgr", "cugr2-lite", "sproute-lite"};

  auto run_at = [&](int workers) {
    ServerOptions options;
    options.workers = workers;
    options.default_iterations = 15;
    Server server(options);
    server.start();
    for (int s = 0; s < kSessions; ++s) {
      const std::string line =
          load_line("l" + std::to_string(s), "s" + std::to_string(s), designs[s], 2);
      EXPECT_TRUE(response_ok(expect_valid_response(server.call(line))));
    }
    // One route per session (a session's stream is ordered, but cross-session
    // scheduling is up to the workers): all in flight at once.
    std::mutex mu;
    std::map<std::string, std::string> by_id;
    for (int s = 0; s < kSessions; ++s) {
      RouteSpec spec;
      spec.id = "r" + std::to_string(s);
      spec.session = "s" + std::to_string(s);
      spec.router = routers[s % 3];
      spec.seed = 11 + s;
      server.submit(route_line(spec), [&mu, &by_id, spec](const std::string& line) {
        std::lock_guard<std::mutex> lock(mu);
        by_id[spec.id] = line;
      });
    }
    server.shutdown(true);  // drain
    EXPECT_EQ(by_id.size(), static_cast<std::size_t>(kSessions));
    return by_id;
  };

  const std::map<std::string, std::string> ref = run_at(1);
  for (const auto& [id, line] : ref) {
    EXPECT_TRUE(response_ok(expect_valid_response(line))) << id;
  }
  for (const int workers : {2, 4}) {
    const std::map<std::string, std::string> got = run_at(workers);
    ASSERT_EQ(got.size(), ref.size()) << workers;
    for (const auto& [id, line] : ref) {
      auto it = got.find(id);
      ASSERT_NE(it, got.end()) << id;
      EXPECT_EQ(it->second, line) << "workers=" << workers << " id=" << id;
    }
  }
}

// ---------------------------------------------------------------------------
// Session cache
// ---------------------------------------------------------------------------

TEST(ServeSession, LruEvictsLeastRecentlyUsed) {
  SessionCacheOptions options;
  options.max_sessions = 2;
  SessionCache cache(options);
  cache.put("s1", serve_design(1, 6, 8), 1);
  cache.put("s2", serve_design(2, 6, 8), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GT(cache.memory_bytes(), 0u);

  cache.put("s3", serve_design(3, 6, 8), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find("s1"), nullptr);  // least recently used is gone
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.names(), (std::vector<std::string>{"s3", "s2"}));

  // A find() touch protects s2; the next insert evicts s3 instead.
  ASSERT_NE(cache.find("s2"), nullptr);
  cache.put("s4", serve_design(4, 6, 8), 1);
  EXPECT_EQ(cache.find("s3"), nullptr);
  ASSERT_NE(cache.find("s2"), nullptr);
  EXPECT_EQ(cache.evictions(), 2);
}

TEST(ServeSession, MemoryBudgetEvictsDownToOneSession) {
  SessionCacheOptions options;
  options.max_sessions = 8;
  options.memory_budget_bytes = 1;  // everything is over budget
  SessionCache cache(options);
  cache.put("s1", serve_design(1, 6, 8), 1);
  EXPECT_EQ(cache.size(), 1u);  // the newest session is never evicted
  cache.put("s2", serve_design(2, 6, 8), 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("s1"), nullptr);
  ASSERT_NE(cache.find("s2"), nullptr);
  EXPECT_GE(cache.evictions(), 1);
}

TEST(ServeSession, ServerEvictionYieldsNotFound) {
  ServerOptions options;
  options.workers = 1;
  options.cache.max_sessions = 2;
  Server server(options);
  server.start();
  for (int s = 1; s <= 3; ++s) {
    const std::string line = load_line("l" + std::to_string(s), "s" + std::to_string(s),
                                       design_text(serve_design(s, 6, 8)));
    ASSERT_TRUE(response_ok(expect_valid_response(server.call(line))));
  }
  RouteSpec spec;
  spec.id = "r1";
  spec.session = "s1";
  const Value evicted = expect_valid_response(server.call(route_line(spec)));
  EXPECT_FALSE(response_ok(evicted));
  EXPECT_EQ(error_code(evicted), "NOT_FOUND");
  spec.id = "r3";
  spec.session = "s3";
  spec.iterations = 10;
  EXPECT_TRUE(response_ok(expect_valid_response(server.call(route_line(spec)))));
  server.shutdown(true);
  expect_accounting_invariant(server);
}

// ---------------------------------------------------------------------------
// Chaos: the serve.* sites, two seeds each
// ---------------------------------------------------------------------------

TEST(ServeChaos, EveryServeSiteTwoSeedsTypedOrRecovered) {
  SKIP_WITHOUT_HOOKS();
  const std::string text = design_text(serve_design(9, 6, 8));
  const std::vector<std::string> sites = {"serve.parse", "serve.enqueue",
                                          "serve.dispatch", "serve.respond"};
  for (const std::uint64_t seed : {7ull, 99ull}) {
    for (const std::string& site : sites) {
      ServerOptions options;
      options.workers = 1;
      options.default_iterations = 10;
      Server server(options);
      server.start();
      ASSERT_TRUE(response_ok(
          expect_valid_response(server.call(load_line("l", "s1", text)))));

      ScopedPlan chaos(FaultPlan{seed, {{site, 1.0, 1}}});
      RouteSpec spec;
      spec.id = "r";
      spec.session = "s1";
      const std::string line = server.call(route_line(spec));
      // Whatever the fault poisoned, the answer is one valid envelope.
      const Value doc = expect_valid_response(line);
      EXPECT_GE(util::fault::fires(site), 1u) << site << " seed " << seed;
      EXPECT_FALSE(response_ok(doc)) << site;
      EXPECT_EQ(error_code(doc), "FAULT_INJECTED") << site << " seed " << seed;

      server.shutdown(true);
      expect_accounting_invariant(server);
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos: the acceptance load run. 200+ mixed requests with every serve.* and
// pipeline fault site armed: zero crashes, every answer a valid typed
// envelope, and the accounting invariant intact at the end.
// ---------------------------------------------------------------------------

TEST(ServeChaos, MixedLoadUnderFaultsKeepsAccountingInvariant) {
  SKIP_WITHOUT_HOOKS();
  obs::metrics().reset();
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.default_iterations = 8;
  options.router_options.dgr.temperature_interval = 4;
  options.cache.max_sessions = 4;
  Server server(options);
  server.start();

  std::vector<std::string> designs;
  for (int s = 0; s < 4; ++s) designs.push_back(design_text(serve_design(50 + s, 6, 10)));
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(response_ok(expect_valid_response(
        server.call(load_line("seed" + std::to_string(s), "c" + std::to_string(s),
                              designs[s])))));
  }

  ScopedPlan chaos(FaultPlan{2026,
                             {{"serve.parse", 0.02, -1},
                              {"serve.enqueue", 0.02, -1},
                              {"serve.dispatch", 0.05, -1},
                              {"serve.respond", 0.02, -1},
                              {"core.loss", 0.01, -1},
                              {"core.grad", 0.01, -1},
                              {"pipeline.alloc", 0.02, -1},
                              {"pipeline.stage", 0.02, -1},
                              {"pipeline.validate", 0.05, -1},
                              {"io.parse", 0.10, -1}}});

  const int kRequests = 220;
  std::mutex mu;
  std::vector<std::string> responses;
  std::atomic<int> answered{0};
  auto sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(line);
    answered.fetch_add(1, std::memory_order_relaxed);
  };

  const char* routers[] = {"dgr", "cugr2-lite", "sproute-lite"};
  for (int i = 0; i < kRequests; ++i) {
    const std::string session = "c" + std::to_string(i % 4);
    std::string line;
    switch (i % 10) {
      case 0:
        line = R"({"id":"ping)" + std::to_string(i) + R"(","op":"ping"})";
        break;
      case 1:
        line = R"({"id":"st)" + std::to_string(i) + R"(","op":"stats"})";
        break;
      case 2:
        line = "{broken json " + std::to_string(i);  // hostile input
        break;
      case 3:
        line = load_line("ld" + std::to_string(i), session, designs[i % 4]);
        break;
      case 4: {
        RouteSpec spec;
        spec.id = "ghost" + std::to_string(i);
        spec.session = "nosuch";
        line = route_line(spec);
        break;
      }
      case 5:
        line = R"({"id":"eco)" + std::to_string(i) + R"(","op":"eco","session":")" +
               session + R"(","mutation":{"generate":true,"seed":)" +
               std::to_string(i) + "}}";
        break;
      default: {
        RouteSpec spec;
        spec.id = "rt" + std::to_string(i);
        spec.session = session;
        spec.router = routers[i % 3];
        spec.seed = 1 + i;
        if (i % 7 == 0) spec.deadline_ms = 40.0;
        if (i % 9 == 0) spec.fallback = "none";
        line = route_line(spec);
        break;
      }
    }
    server.submit(line, sink);
  }
  server.shutdown(true);  // drain everything still queued

  // Zero crashes is implied by getting here. Every request was answered
  // exactly once, and every answer is a valid typed envelope.
  EXPECT_EQ(answered.load(), kRequests);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  int failures = 0;
  for (const std::string& line : responses) {
    const Value doc = expect_valid_response(line);
    if (!response_ok(doc)) {
      ++failures;
      EXPECT_FALSE(error_code(doc).empty()) << line;
    }
  }
  EXPECT_GT(failures, 0);  // the armed plan really did bite

  const Server::Accounting a = server.accounting();
  EXPECT_EQ(a.offered, kRequests + 4);  // + the pre-fault session loads
  expect_accounting_invariant(server);
  // The metrics registry saw the same story the counters tell.
  EXPECT_EQ(obs::metrics().counter("serve.requests.offered").value(), a.offered);
  EXPECT_EQ(obs::metrics().counter("serve.requests.succeeded").value(), a.succeeded);
  EXPECT_EQ(obs::metrics().counter("serve.requests.rejected").value(), a.rejected);
  EXPECT_EQ(obs::metrics().counter("serve.requests.failed").value(), a.failed);
}

// ---------------------------------------------------------------------------
// Live ops telemetry: request-scoped tracing, metrics export, SLO gauges,
// and the flight recorder (DESIGN.md §8/§10)
// ---------------------------------------------------------------------------

/// Turns tracing off and clears the rings even when a test fails mid-way.
struct ServeTraceGuard {
  ~ServeTraceGuard() {
    obs::set_tracing(false);
    obs::reset_trace();
  }
};

// The tentpole acceptance test: a mixed multi-session load with tracing on.
// Every span emitted under a routed request — the serve.job root on the
// worker thread and everything dispatched to pool workers under a pool.job —
// must carry that request's id in args.req, and no other request's.
TEST(ServeObs, RoutedSpansCarryTheirRequestContext) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with DGR_OBS=OFF";
  ServeTraceGuard guard;
  ServerOptions options;
  options.workers = 2;
  options.default_iterations = 10;
  Server server(options);
  server.start();

  const int kSessions = 3;
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(response_ok(expect_valid_response(
        server.call(load_line("seed" + std::to_string(s), "s" + std::to_string(s),
                              design_text(serve_design(60 + s, 8, 20)))))));
  }

  obs::reset_trace();
  obs::set_tracing(true);
  const int kRoutes = 6;
  std::mutex mu;
  std::vector<std::string> responses;
  const char* routers[] = {"dgr", "cugr2-lite", "sproute-lite"};
  for (int i = 0; i < kRoutes; ++i) {
    RouteSpec spec;
    spec.id = "req" + std::to_string(i);
    spec.session = "s" + std::to_string(i % kSessions);
    spec.router = routers[i % 3];
    spec.seed = 5 + i;
    server.submit(route_line(spec), [&](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(line);
    });
  }
  server.shutdown(true);
  obs::set_tracing(false);

  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRoutes));
  for (const std::string& line : responses) {
    EXPECT_TRUE(response_ok(expect_valid_response(line))) << line;
  }

  Value doc;
  std::string error;
  ASSERT_TRUE(Value::parse(obs::chrome_trace_json(), &doc, &error)) << error;
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Context-carrying parents: the per-request serve.job root plus every
  // pool.job a request's stages dispatched to worker threads.
  struct Parent {
    double tid, lo, hi;
    std::string req;
  };
  std::vector<Parent> parents;
  std::map<std::string, int> serve_jobs_by_req;
  for (const Value& ev : events->items()) {
    const Value* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const std::string& name = ev.find("name")->as_string();
    if (name != "serve.job" && name != "pool.job") continue;
    const Value* args = ev.find("args");
    ASSERT_NE(args, nullptr) << name << " span without request context";
    ASSERT_NE(args->find("req"), nullptr) << name;
    const double lo = ev.find("ts")->as_number();
    parents.push_back({ev.find("tid")->as_number(), lo,
                       lo + ev.find("dur")->as_number(),
                       args->find("req")->as_string()});
    if (name == "serve.job") ++serve_jobs_by_req[args->find("req")->as_string()];
  }
  // Exactly one serve.job root per routed request.
  ASSERT_EQ(serve_jobs_by_req.size(), static_cast<std::size_t>(kRoutes));
  for (int i = 0; i < kRoutes; ++i) {
    EXPECT_EQ(serve_jobs_by_req["req" + std::to_string(i)], 1) << i;
  }

  // Every other span contained in a parent on the same thread must carry
  // exactly that parent's request id. (Workers serve requests back to back
  // on one tid; the time intervals keep the attribution unambiguous.)
  std::size_t attributed = 0;
  std::map<std::string, int> pipeline_runs_by_req;
  for (const Value& ev : events->items()) {
    const Value* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const std::string& name = ev.find("name")->as_string();
    if (name == "serve.job" || name == "pool.job") continue;
    const double tid = ev.find("tid")->as_number();
    const double lo = ev.find("ts")->as_number();
    const double hi = lo + ev.find("dur")->as_number();
    for (const Parent& p : parents) {
      if (tid != p.tid || lo < p.lo || hi > p.hi) continue;
      const Value* args = ev.find("args");
      ASSERT_NE(args, nullptr) << name << " under request " << p.req;
      ASSERT_NE(args->find("req"), nullptr) << name;
      EXPECT_EQ(args->find("req")->as_string(), p.req) << name;
      ++attributed;
      if (name == "pipeline.run") {
        ++pipeline_runs_by_req[args->find("req")->as_string()];
      }
    }
  }
  EXPECT_GT(attributed, 0u);
  // Every request really did drive the pipeline under its own context.
  for (int i = 0; i < kRoutes; ++i) {
    EXPECT_EQ(pipeline_runs_by_req["req" + std::to_string(i)], 1) << i;
  }
}

TEST(ServeObs, StatsExposesTraceAndFlightState) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.start();
  ASSERT_TRUE(response_ok(expect_valid_response(server.call(R"({"id":"p","op":"ping"})"))));

  const Value stats = expect_valid_response(server.call(R"({"id":"st","op":"stats"})"));
  ASSERT_TRUE(response_ok(stats));
  const Value* trace = stats.find("result")->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_FALSE(trace->find("enabled")->as_bool());
  EXPECT_GE(trace->find("dropped_events")->as_number(), 0.0);
  EXPECT_EQ(trace->find("ring_capacity")->as_number(),
            static_cast<double>(obs::trace_ring_capacity()));
  const Value* flight = stats.find("result")->find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->find("capacity")->as_number(), 256.0);  // default, pow2
  EXPECT_GE(flight->find("occupancy")->as_number(), 1.0);   // the ping
  EXPECT_GE(flight->find("recorded")->as_number(), flight->find("occupancy")->as_number());
  EXPECT_EQ(flight->find("dumps")->as_number(), 0.0);  // no flight_path set

  server.shutdown(true);
  expect_accounting_invariant(server);
}

TEST(ServeObs, MetricsOpServesJsonAndPrometheus) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.start();

  const Value json_doc =
      expect_valid_response(server.call(R"({"id":"m1","op":"metrics"})"));
  ASSERT_TRUE(response_ok(json_doc));
  EXPECT_EQ(json_doc.find("result")->find("format")->as_string(), "json");
  ASSERT_NE(json_doc.find("result")->find("snapshot"), nullptr);
  ASSERT_NE(json_doc.find("result")->find("snapshot")->find("counters"), nullptr);

  const Value prom = expect_valid_response(
      server.call(R"({"id":"m2","op":"metrics","format":"prometheus"})"));
  ASSERT_TRUE(response_ok(prom));
  const std::string& text = prom.find("result")->find("text")->as_string();
  EXPECT_NE(text.find("# TYPE dgr_serve_requests_offered counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dgr_serve_slo_availability gauge"), std::string::npos);
  EXPECT_NE(text.find("dgr_serve_latency_ms_bucket{le=\"+Inf\"}"), std::string::npos);

  const Value bad = expect_valid_response(
      server.call(R"({"id":"m3","op":"metrics","format":"xml"})"));
  EXPECT_FALSE(response_ok(bad));
  EXPECT_EQ(error_code(bad), "INVALID_ARGUMENT");

  server.shutdown(true);
  expect_accounting_invariant(server);
}

TEST(ServeObs, PrometheusExportByteIdenticalAcrossWorkerCounts) {
  std::vector<std::string> designs;
  for (int s = 0; s < 4; ++s) designs.push_back(design_text(serve_design(80 + s, 8, 20)));

  // Timing-derived series are carved out; everything left must be a pure
  // function of the (deterministic) workload.
  obs::PrometheusOptions po;
  po.exclude_prefixes = {"serve.latency_ms", "serve.slo.", "serve.queue_depth"};

  auto run_at = [&](int workers) {
    obs::metrics().reset();
    ServerOptions options;
    options.workers = workers;
    options.default_iterations = 12;
    Server server(options);
    server.start();
    for (int s = 0; s < 4; ++s) {
      const std::string id = "l" + std::to_string(s);
      EXPECT_TRUE(response_ok(expect_valid_response(
          server.call(load_line(id, "s" + std::to_string(s), designs[s], 2)))));
    }
    const char* routers[] = {"dgr", "cugr2-lite"};
    for (int s = 0; s < 4; ++s) {
      RouteSpec spec;
      spec.id = "r" + std::to_string(s);
      spec.session = "s" + std::to_string(s);
      spec.router = routers[s % 2];
      spec.seed = 21 + s;
      EXPECT_TRUE(response_ok(expect_valid_response(server.call(route_line(spec)))));
    }
    server.shutdown(true);
    return obs::prometheus_text(po);
  };

  run_at(1);  // warm-up: registers every metric name the workload touches
  const std::string ref = run_at(1);
  EXPECT_NE(ref.find("dgr_serve_requests_succeeded 8"), std::string::npos) << ref;
  for (const int workers : {2, 4}) {
    EXPECT_EQ(run_at(workers), ref) << "workers=" << workers;
  }
}

TEST(ServeObs, SnapshotParsesMidLoadAndIsDeterministicAfterDrain) {
  std::vector<std::string> designs;
  for (int s = 0; s < 3; ++s) designs.push_back(design_text(serve_design(90 + s, 8, 16)));

  obs::PrometheusOptions po;
  po.exclude_prefixes = {"serve.latency_ms", "serve.slo.", "serve.queue_depth"};

  auto run_at = [&](int workers) {
    obs::metrics().reset();
    ServerOptions options;
    options.workers = workers;
    options.queue_capacity = 64;
    options.default_iterations = 10;
    Server server(options);
    server.start();
    for (int s = 0; s < 3; ++s) {
      EXPECT_TRUE(response_ok(expect_valid_response(server.call(
          load_line("l" + std::to_string(s), "s" + std::to_string(s), designs[s])))));
    }
    std::mutex mu;
    std::vector<std::string> responses;
    for (int i = 0; i < 12; ++i) {
      RouteSpec spec;
      spec.id = "r" + std::to_string(i);
      spec.session = "s" + std::to_string(i % 3);
      spec.seed = 31 + i;
      server.submit(route_line(spec), [&](const std::string& line) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(line);
      });
    }
    // Continuous export runs concurrently with the load: snapshots taken
    // mid-flight must always be complete, well-formed documents.
    for (int probe = 0; probe < 5; ++probe) {
      Value doc;
      std::string error;
      EXPECT_TRUE(Value::parse(obs::metrics().snapshot_json(), &doc, &error)) << error;
      EXPECT_NE(doc.find("counters"), nullptr);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    server.shutdown(true);
    EXPECT_EQ(responses.size(), 12u);
    for (const std::string& line : responses) {
      EXPECT_TRUE(response_ok(expect_valid_response(line)));
    }
    return obs::render_prometheus(obs::metrics().snapshot(), po);
  };

  run_at(1);  // warm-up registers the full name set
  const std::string ref = run_at(1);
  for (const int workers : {2, 4}) {
    EXPECT_EQ(run_at(workers), ref) << "workers=" << workers;
  }
}

TEST(ServeObs, ExporterRewritesArtifactsWhileRunning) {
  const std::string snap_path = "serve_exporter_test_snapshot.json";
  const std::string prom_path = "serve_exporter_test_metrics.prom";
  std::remove(snap_path.c_str());
  std::remove(prom_path.c_str());

  ServerOptions options;
  options.workers = 1;
  options.metrics_interval_s = 0.02;
  options.metrics_snapshot_path = snap_path;
  options.prometheus_path = prom_path;
  Server server(options);
  server.start();
  ASSERT_TRUE(response_ok(expect_valid_response(server.call(R"({"id":"p","op":"ping"})"))));

  // Both artifacts appear (and keep being rewritten) while the daemon is
  // still up — not just at shutdown.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto wait_for = [&](const std::string& path) {
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(path);
      if (in) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };
  ASSERT_TRUE(wait_for(snap_path)) << snap_path;
  ASSERT_TRUE(wait_for(prom_path)) << prom_path;

  {
    std::ifstream in(snap_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    Value doc;
    std::string error;
    EXPECT_TRUE(Value::parse(buffer.str(), &doc, &error)) << error;
    EXPECT_NE(doc.find("counters"), nullptr);
    // The exporter refreshed the SLO gauges on its tick.
    EXPECT_NE(doc.find("gauges")->find("serve.slo.availability"), nullptr);
  }
  {
    std::ifstream in(prom_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("# TYPE dgr_serve_requests_offered counter"),
              std::string::npos);
  }

  server.shutdown(true);
  std::remove(snap_path.c_str());
  std::remove(prom_path.c_str());
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(ServeFlight, RingWrapsKeepsNewestAndValidates) {
  serve::FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    serve::FlightRecord rec;
    rec.set_id("r" + std::to_string(i));
    rec.set_op("ping");
    rec.set_session("s");
    rec.latency_ms = 0.5 * i;
    rec.status = static_cast<int>(StatusCode::kOk);
    recorder.record(rec);
  }
  EXPECT_EQ(recorder.total(), 6u);
  EXPECT_EQ(recorder.size(), 4u);

  const Value doc = recorder.to_json("test");
  std::string error;
  EXPECT_TRUE(serve::validate_flight_json(doc, &error)) << error;
  EXPECT_EQ(doc.find("recorded")->as_number(), 6.0);
  EXPECT_EQ(doc.find("dropped")->as_number(), 2.0);  // r0, r1 overwritten
  const Value* records = doc.find("records");
  ASSERT_EQ(records->items().size(), 4u);
  EXPECT_EQ(records->items().front().find("id")->as_string(), "r2");
  EXPECT_EQ(records->items().back().find("id")->as_string(), "r5");
  EXPECT_EQ(records->items().back().find("status")->as_string(), "OK");
}

TEST(ServeFlight, FieldSettersTruncateAndJoinSites) {
  serve::FlightRecord rec;
  rec.set_id(std::string(100, 'x'));  // id[] is 48 bytes incl. NUL
  EXPECT_EQ(std::string(rec.id).size(), sizeof(rec.id) - 1);
  rec.set_fault_sites({"serve.parse", "serve.handler"});
  EXPECT_EQ(std::string(rec.fault_sites), "serve.parse,serve.handler");
  EXPECT_EQ(rec.fault_fires, 2u);
}

TEST(ServeFlight, ValidatorRejectsBrokenDocuments) {
  serve::FlightRecorder recorder(2);
  serve::FlightRecord rec;
  rec.set_id("r1");
  rec.set_op("route");
  recorder.record(rec);
  std::string error;

  {
    Value doc = recorder.to_json("internal");
    ASSERT_TRUE(serve::validate_flight_json(doc, &error)) << error;
    doc["reason"] = "";
    EXPECT_FALSE(serve::validate_flight_json(doc, &error));
  }
  {
    Value doc = recorder.to_json("internal");
    doc["records"] = Value::array();
    Value broken = Value::object();
    broken["id"] = "";  // empty id must be rejected
    doc["records"].push_back(std::move(broken));
    EXPECT_FALSE(serve::validate_flight_json(doc, &error));
  }
  {
    Value doc = recorder.to_json("internal");
    doc["capacity"] = 0;
    EXPECT_FALSE(serve::validate_flight_json(doc, &error));
  }
}

// The chaos leg of the tentpole: a fault-forced INTERNAL response must dump
// a flight artifact that validates against dgr-flight-v1 and pins the blame
// on the fired site.
TEST(ServeChaos, HandlerCrashDumpsValidatedFlightArtifact) {
  SKIP_WITHOUT_HOOKS();
  const std::string path = "serve_flight_test_artifact.json";
  std::remove(path.c_str());

  ServerOptions options;
  options.workers = 1;
  options.default_iterations = 10;
  options.flight_path = path;
  options.flight_capacity = 8;
  Server server(options);
  server.start();
  ASSERT_TRUE(response_ok(expect_valid_response(
      server.call(load_line("l", "s1", design_text(serve_design(9, 6, 8)))))));

  ScopedPlan chaos(FaultPlan{3, {{"serve.handler", 1.0, 1}}});
  RouteSpec spec;
  spec.id = "boom";
  spec.session = "s1";
  const Value doc = expect_valid_response(server.call(route_line(spec)));
  EXPECT_FALSE(response_ok(doc));
  EXPECT_EQ(error_code(doc), "INTERNAL");
  EXPECT_GE(util::fault::fires("serve.handler"), 1u);

  auto read_artifact = [&](const std::string& expected_reason) {
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << "missing flight artifact " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    Value flight;
    std::string error;
    EXPECT_TRUE(Value::parse(buffer.str(), &flight, &error)) << error;
    EXPECT_TRUE(serve::validate_flight_json(flight, &error)) << error;
    EXPECT_EQ(flight.find("reason")->as_string(), expected_reason);
    return flight;
  };

  // The INTERNAL response triggered an immediate dump.
  const Value flight = read_artifact("internal");
  bool found = false;
  for (const Value& r : flight.find("records")->items()) {
    if (r.find("id")->as_string() != "boom") continue;
    found = true;
    EXPECT_EQ(r.find("op")->as_string(), "route");
    EXPECT_EQ(r.find("session")->as_string(), "s1");
    EXPECT_EQ(r.find("status")->as_string(), "INTERNAL");
    EXPECT_FALSE(r.find("cancelled")->as_bool());
    bool site_fired = false;
    for (const Value& s : r.find("fault_sites")->items()) {
      if (s.as_string() == "serve.handler") site_fired = true;
    }
    EXPECT_TRUE(site_fired) << "serve.handler missing from fault_sites";
  }
  EXPECT_TRUE(found) << "request 'boom' missing from flight records";
  EXPECT_GE(server.flight().dumps(), 1u);

  // Shutdown rewrites the artifact with its own reason.
  server.shutdown(true);
  read_artifact("shutdown");
  expect_accounting_invariant(server);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

TEST(ServeTransport, StdioAnswersAndStopsOnShutdownOp) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.start();

  std::istringstream in(
      "{\"id\":\"p\",\"op\":\"ping\"}\n"
      "not json\n"
      "\n"
      "{\"id\":\"q\",\"op\":\"shutdown\"}\n"
      "{\"id\":\"never\",\"op\":\"ping\"}\n");
  std::ostringstream out;
  const std::size_t submitted = serve::run_stdio(server, in, out);
  EXPECT_EQ(submitted, 3u);  // blank line skipped; loop stops after shutdown
  EXPECT_TRUE(server.stop_requested());

  std::istringstream lines(out.str());
  std::string line;
  std::vector<Value> docs;
  while (std::getline(lines, line)) docs.push_back(expect_valid_response(line));
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_TRUE(response_ok(docs[0]));
  EXPECT_FALSE(response_ok(docs[1]));
  EXPECT_EQ(error_code(docs[1]), "PARSE_ERROR");
  EXPECT_TRUE(response_ok(docs[2]));

  server.shutdown(true);
  expect_accounting_invariant(server);
}

TEST(ServeTransport, SignalStopsReadLoop) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.start();
  serve::set_signal_received(15);  // as if SIGTERM arrived
  std::istringstream in("{\"id\":\"p\",\"op\":\"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(serve::run_stdio(server, in, out), 0u);
  serve::set_signal_received(0);
  server.shutdown(true);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(ServeTransport, UnixSocketRoundTrip) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.start();
  serve::UnixSocketListener listener(server);
  const std::string path =
      "/tmp/dgr_serve_test_" + std::to_string(::getpid()) + ".sock";
  const Status bound = listener.listen(path);
  ASSERT_TRUE(bound.ok()) << bound.to_string();

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, path.size());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);

  const std::string request = "{\"id\":\"p\",\"op\":\"ping\"}\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char chunk[512];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const Value doc = expect_valid_response(reply.substr(0, reply.find('\n')));
  EXPECT_TRUE(response_ok(doc));
  EXPECT_EQ(doc.find("id")->as_string(), "p");

  listener.stop();
  server.shutdown(true);
  expect_accounting_invariant(server);
}
#endif

}  // namespace
}  // namespace dgr
