#include <gtest/gtest.h>

#include <memory>

#include "design/generator.hpp"
#include "eval/metrics.hpp"
#include "ilp/branch_bound.hpp"
#include "ilp/routing_ilp.hpp"
#include "ilp/simplex.hpp"

namespace dgr::ilp {
namespace {

// ---------------------------------------------------------------------------
// Simplex LP
// ---------------------------------------------------------------------------

TEST(Simplex, SolvesTextbookMaximisation) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // => min -3x - 5y; optimum x=2, y=6, z=36.
  LinearProgram lp;
  const int x = lp.add_var(-3.0);
  const int y = lp.add_var(-5.0);
  lp.add_constraint({{x, 1.0}}, Rel::kLe, 4.0);
  lp.add_constraint({{y, 2.0}}, Rel::kLe, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, Rel::kLe, 18.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-7);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 10, x <= 4 -> x=4, y=6, z=16.
  LinearProgram lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 10.0);
  lp.add_constraint({{x, 1.0}}, Rel::kLe, 4.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 16.0, 1e-7);
}

TEST(Simplex, HandlesGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x - y >= -2, y >= 0 -> y is free to shrink:
  // optimum at intersection? x+y=4 with max x: unconstrained above... take
  // x=4, y=0: check x - y = 4 >= -2 ok; z = 8. Any x>4 raises z. Optimal 8.
  LinearProgram lp;
  const int x = lp.add_var(2.0);
  const int y = lp.add_var(3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kGe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Rel::kGe, -2.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const int x = lp.add_var(1.0);
  lp.add_constraint({{x, 1.0}}, Rel::kLe, 2.0);
  lp.add_constraint({{x, 1.0}}, Rel::kGe, 5.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  const int x = lp.add_var(-1.0);  // min -x, x unbounded above
  lp.add_constraint({{x, 1.0}}, Rel::kGe, 0.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalisation) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LinearProgram lp;
  const int x = lp.add_var(1.0);
  lp.add_constraint({{x, -1.0}}, Rel::kLe, -3.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  LinearProgram lp;
  const int x = lp.add_var(-1.0);
  const int y = lp.add_var(-1.0);
  lp.add_constraint({{x, 1.0}}, Rel::kLe, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 1.0);
  lp.add_constraint({{y, 1.0}}, Rel::kLe, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 2.0}}, Rel::kLe, 2.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-7);
}

TEST(Simplex, ZeroObjectiveFeasibilityProblem) {
  LinearProgram lp;
  const int x = lp.add_var(0.0);
  lp.add_constraint({{x, 1.0}}, Rel::kEq, 7.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 7.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 listed twice: phase 1 must cope with the redundant artificial.
  LinearProgram lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 2.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

// ---------------------------------------------------------------------------
// Branch & bound MILP
// ---------------------------------------------------------------------------

TEST(Milp, IntegerKnapsack) {
  // max 8a + 11b + 6c  with 5a + 7b + 4c <= 14, binaries.
  // Optimum: b + c + a? 5+7+4=16 > 14; best is a+b (12 weight) = 19? c+b=17 w11,
  // a+c = 14 w10 -> a+b: 19, b+c: 17, a+c: 14... max is a+b = 19.
  LinearProgram lp;
  const int a = lp.add_var(-8.0);
  const int b = lp.add_var(-11.0);
  const int c = lp.add_var(-6.0);
  lp.add_constraint({{a, 5.0}, {b, 7.0}, {c, 4.0}}, Rel::kLe, 14.0);
  for (const int v : {a, b, c}) lp.add_constraint({{v, 1.0}}, Rel::kLe, 1.0);
  const MilpResult r = solve_milp(lp, {a, b, c});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -19.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(a)], 1.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(c)], 0.0, 1e-6);
}

TEST(Milp, IntegralLpNeedsNoBranching) {
  LinearProgram lp;
  const int x = lp.add_var(-1.0);
  lp.add_constraint({{x, 1.0}}, Rel::kLe, 3.0);
  const MilpResult r = solve_milp(lp, {x});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-7);
  EXPECT_EQ(r.nodes_explored, 1);
}

TEST(Milp, MixedIntegerContinuous) {
  // min -x - 0.5y, x integer <= 2.5, y continuous <= 1.5, x + y <= 3.
  LinearProgram lp;
  const int x = lp.add_var(-1.0);
  const int y = lp.add_var(-0.5);
  lp.add_constraint({{x, 1.0}}, Rel::kLe, 2.5);
  lp.add_constraint({{y, 1.0}}, Rel::kLe, 1.5);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 3.0);
  const MilpResult r = solve_milp(lp, {x});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // x=2 (integral), y=1 -> -2.5.
  EXPECT_NEAR(r.objective, -2.5, 1e-6);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  LinearProgram lp;
  const int x = lp.add_var(1.0);
  lp.add_constraint({{x, 1.0}}, Rel::kGe, 0.4);
  lp.add_constraint({{x, 1.0}}, Rel::kLe, 0.6);
  const MilpResult r = solve_milp(lp, {x});
  EXPECT_FALSE(r.has_incumbent);
  EXPECT_NE(r.status, LpStatus::kOptimal);
}

TEST(Milp, TimeLimitReportsTimeout) {
  // A knapsack big enough to need branching, with a zero time budget.
  LinearProgram lp;
  std::vector<int> ints;
  for (int i = 0; i < 12; ++i) {
    const int v = lp.add_var(-(7.0 + (i * 13) % 5));
    ints.push_back(v);
    lp.add_constraint({{v, 1.0}}, Rel::kLe, 1.0);
  }
  std::vector<std::pair<int, double>> weight_terms;
  for (int i = 0; i < 12; ++i) weight_terms.emplace_back(ints[static_cast<std::size_t>(i)], 3.0 + (i * 7) % 4);
  lp.add_constraint(weight_terms, Rel::kLe, 11.0);
  MilpOptions opts;
  opts.time_limit_seconds = 0.0;
  const MilpResult r = solve_milp(lp, ints, opts);
  EXPECT_TRUE(r.timed_out);
}

// ---------------------------------------------------------------------------
// Routing ILP
// ---------------------------------------------------------------------------

struct Instance {
  std::unique_ptr<design::Design> design;
  std::vector<float> cap;
  std::unique_ptr<dag::DagForest> forest;
};

Instance table1_instance(int grid, int cap, int nets, int box, std::uint64_t seed) {
  design::Table1Params params;
  params.grid_w = params.grid_h = grid;
  params.capacity = cap;
  params.num_nets = nets;
  params.box_size = box;
  auto t1 = design::make_table1_instance(params, seed);
  Instance inst;
  inst.design = std::make_unique<design::Design>(std::move(t1.design));
  inst.cap = std::move(t1.capacities);
  dag::ForestOptions fopts;
  fopts.tree.congestion_shifted = false;  // one FLUTE tree per net
  fopts.via_demand_beta = 0.0f;           // wire-only protocol
  inst.forest = std::make_unique<dag::DagForest>(dag::DagForest::build(*inst.design, fopts));
  return inst;
}

TEST(RoutingIlp, RequiresProtocolForest) {
  design::IspdLikeParams p;
  p.num_nets = 20;
  p.grid_w = p.grid_h = 12;
  auto d = design::generate_ispd_like(p, 1);
  const auto cap = d.capacities();
  const dag::DagForest multi_tree = dag::DagForest::build(d, {});  // default beta != 0
  EXPECT_THROW(build_routing_ilp(multi_tree, cap), std::invalid_argument);
}

TEST(RoutingIlp, ModelShape) {
  Instance inst = table1_instance(10, 1, 6, 4, 3);
  const RoutingIlp model = build_routing_ilp(*inst.forest, inst.cap);
  EXPECT_EQ(model.path_var.size(), inst.forest->paths().size());
  EXPECT_EQ(model.integer_vars.size(), inst.forest->paths().size());
  // Constraints: one equality per subnet + one per contended edge.
  EXPECT_EQ(model.lp.constraints.size(),
            inst.forest->subnets().size() + model.contended_edges);
}

TEST(RoutingIlp, SolutionDecodesAndConnects) {
  Instance inst = table1_instance(12, 1, 8, 5, 7);
  MilpOptions opts;
  opts.time_limit_seconds = 30.0;
  const RoutingIlpResult r = solve_routing_ilp(*inst.forest, inst.cap, opts);
  ASSERT_TRUE(r.milp.has_incumbent);
  EXPECT_TRUE(r.solution.connects_all_pins());
  // Reported objective equals the decoded solution's ReLU overflow.
  const grid::DemandMap dm = r.solution.demand(0.0f);
  EXPECT_NEAR(dm.total_overflow(inst.cap), r.overflow, 1e-6);
}

class RoutingIlpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingIlpVsBruteForce, MilpMatchesExhaustiveOptimum) {
  Instance inst = table1_instance(8, 1, 5, 4, GetParam());
  const double brute = brute_force_min_overflow(*inst.forest, inst.cap);
  ASSERT_GE(brute, 0.0) << "instance unexpectedly too large for brute force";
  MilpOptions opts;
  opts.time_limit_seconds = 60.0;
  const RoutingIlpResult r = solve_routing_ilp(*inst.forest, inst.cap, opts);
  ASSERT_EQ(r.milp.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.overflow, brute, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingIlpVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BruteForce, RejectsHugeInstances) {
  Instance inst = table1_instance(20, 1, 40, 6, 9);
  EXPECT_LT(brute_force_min_overflow(*inst.forest, inst.cap, 1000), 0.0);
}

TEST(RoutingIlp, ZeroCongestionInstanceIsZeroOverflow) {
  Instance inst = table1_instance(16, 8, 4, 6, 11);  // huge capacity
  const RoutingIlpResult r = solve_routing_ilp(*inst.forest, inst.cap);
  ASSERT_TRUE(r.milp.has_incumbent);
  EXPECT_NEAR(r.overflow, 0.0, 1e-9);
}

}  // namespace
}  // namespace dgr::ilp
