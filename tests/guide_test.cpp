#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/solver.hpp"
#include "design/generator.hpp"
#include "post/guide.hpp"
#include "post/layer_assign.hpp"
#include "post/maze_refine.hpp"
#include "routers/cugr2lite.hpp"

namespace dgr::post {
namespace {

using design::Design;
using design::Net;
using eval::NetRoute;
using eval::RouteSolution;
using geom::Point;
using grid::GCellGrid;

struct Fixture {
  std::unique_ptr<Design> design;
  RouteSolution sol;

  static Fixture make() {
    Fixture fx;
    GCellGrid grid = GCellGrid::uniform(10, 10, 4, 3);
    std::vector<Net> nets;
    nets.push_back({"l", {{1, 1}, {6, 5}}});
    nets.push_back({"s", {{0, 8}, {8, 8}}});
    fx.design = std::make_unique<Design>("gfx", std::move(grid), std::move(nets));
    fx.sol.design = fx.design.get();
    NetRoute l;
    l.design_net = 0;
    l.paths.push_back(dag::PatternPath{{{1, 1}, {6, 1}, {6, 5}}});
    NetRoute s;
    s.design_net = 1;
    s.paths.push_back(dag::PatternPath{{{0, 8}, {8, 8}}});
    fx.sol.nets = {l, s};
    return fx;
  }
};

TEST(Guides, CoverHandBuiltSolution) {
  Fixture fx = Fixture::make();
  const auto cap = fx.design->capacities();
  const LayerAssignment la = assign_layers(fx.sol, cap);
  const RouteGuides guides = make_guides(fx.sol, la);
  ASSERT_EQ(guides.nets.size(), 2u);
  EXPECT_GT(guides.box_count(), 0u);
  EXPECT_TRUE(guides_cover_solution(guides, fx.sol, la));
}

TEST(Guides, WireBoxesSitOnAssignedLayers) {
  Fixture fx = Fixture::make();
  const auto cap = fx.design->capacities();
  const LayerAssignment la = assign_layers(fx.sol, cap);
  const RouteGuides guides = make_guides(fx.sol, la);
  // Net 0's first leg is horizontal from (1,1) to (6,1) on la.leg_layers[0][0].
  const int h_layer = la.leg_layers[0][0];
  bool found = false;
  for (const GuideBox& box : guides.nets[0].boxes) {
    if (box.layer == h_layer && box.rect.contains({3, 1}) && box.rect.contains({6, 1})) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Guides, ViaStacksReachThePinLayer) {
  Fixture fx = Fixture::make();
  const auto cap = fx.design->capacities();
  const LayerAssignment la = assign_layers(fx.sol, cap);
  const RouteGuides guides = make_guides(fx.sol, la);
  // Every pin cell must be covered at layer 0 and at its wire layer, with
  // no gap between (checked wholesale by guides_cover_solution; spot-check
  // the pin stack here).
  auto covered = [&](std::size_t n, Point p, int layer) {
    for (const GuideBox& box : guides.nets[n].boxes) {
      if (box.layer == layer && box.rect.contains(p)) return true;
    }
    return false;
  };
  EXPECT_TRUE(covered(0, {1, 1}, 0));
  EXPECT_TRUE(covered(0, {6, 5}, 0));
  EXPECT_TRUE(covered(1, {0, 8}, 0));
}

TEST(Guides, MarginInflatesBoxesWithinGrid) {
  Fixture fx = Fixture::make();
  const auto cap = fx.design->capacities();
  const LayerAssignment la = assign_layers(fx.sol, cap);
  GuideOptions opts;
  opts.margin = 2;
  const RouteGuides guides = make_guides(fx.sol, la, opts);
  EXPECT_TRUE(guides_cover_solution(guides, fx.sol, la));
  for (const NetGuide& net : guides.nets) {
    for (const GuideBox& box : net.boxes) {
      EXPECT_GE(box.rect.lo.x, 0);
      EXPECT_GE(box.rect.lo.y, 0);
      EXPECT_LT(box.rect.hi.x, fx.design->grid().width());
      EXPECT_LT(box.rect.hi.y, fx.design->grid().height());
    }
  }
}

TEST(Guides, DetectsMissingCoverage) {
  Fixture fx = Fixture::make();
  const auto cap = fx.design->capacities();
  const LayerAssignment la = assign_layers(fx.sol, cap);
  RouteGuides guides = make_guides(fx.sol, la);
  guides.nets[0].boxes.clear();  // destroy net 0's guide
  EXPECT_FALSE(guides_cover_solution(guides, fx.sol, la));
}

TEST(Guides, TextDumpHasIspdShape) {
  Fixture fx = Fixture::make();
  const auto cap = fx.design->capacities();
  const LayerAssignment la = assign_layers(fx.sol, cap);
  const RouteGuides guides = make_guides(fx.sol, la);
  std::ostringstream os;
  write_guides(os, guides, *fx.design);
  const std::string s = os.str();
  EXPECT_NE(s.find("l\n(\n"), std::string::npos);
  EXPECT_NE(s.find("s\n(\n"), std::string::npos);
  // Every open paren closed.
  EXPECT_EQ(std::count(s.begin(), s.end(), '('), std::count(s.begin(), s.end(), ')'));
}

TEST(Guides, FullDgrPipelineProducesCoveringGuides) {
  design::IspdLikeParams p;
  p.num_nets = 150;
  p.grid_w = p.grid_h = 18;
  p.layers = 5;
  const Design d = design::generate_ispd_like(p, 44);
  const auto cap = d.capacities();
  const dag::DagForest forest = dag::DagForest::build(d, {});
  core::DgrConfig config;
  config.iterations = 80;
  config.temperature_interval = 20;
  core::DgrSolver solver(forest, cap, config);
  solver.train();
  RouteSolution sol = solver.extract();
  maze_refine(sol, cap);
  const LayerAssignment la = assign_layers(sol, cap);
  const RouteGuides guides = make_guides(sol, la);
  EXPECT_TRUE(guides_cover_solution(guides, sol, la));
  EXPECT_GT(guides.box_count(), sol.nets.size());
}

TEST(Guides, CoverBaselineRouterSolutions) {
  design::IspdLikeParams p;
  p.num_nets = 120;
  p.grid_w = p.grid_h = 16;
  p.layers = 5;
  const Design d = design::generate_ispd_like(p, 45);
  const auto cap = d.capacities();
  routers::Cugr2Lite router(d, cap);
  const RouteSolution sol = router.route();
  const LayerAssignment la = assign_layers(sol, cap);
  const RouteGuides guides = make_guides(sol, la);
  EXPECT_TRUE(guides_cover_solution(guides, sol, la));
}

}  // namespace
}  // namespace dgr::post
