// Pipeline layer tests: RoutingContext bookkeeping, the router registry,
// the stage orchestrator, warm-start semantics, and the cross-router
// differential test — every registered router, run through the same
// Pipeline on a small seeded design, must return a fully connected,
// direction-legal solution whose metrics come from the shared eval stage.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "design/generator.hpp"
#include "eval/metrics.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "util/log.hpp"

namespace dgr::pipeline {
namespace {

design::Design small_design(std::uint64_t seed = 4242) {
  design::IspdLikeParams p;
  p.name = "pipeline_small";
  p.grid_w = p.grid_h = 16;
  p.num_nets = 120;
  p.layers = 5;
  p.tracks_per_layer = 3;
  p.hotspot_affinity = 0.5;
  return design::generate_ispd_like(p, seed);
}

/// Fast DGR settings for tests (the default 1000 iterations is bench-scale).
RouterOptions fast_options() {
  RouterOptions o;
  o.dgr.iterations = 80;
  o.dgr.temperature_interval = 20;
  return o;
}

/// Direction legality: every path has >= 2 waypoints, consecutive waypoints
/// are axis-aligned (H/V legs only), all waypoints are on the grid, and the
/// walked edges resolve to valid edge ids.
void expect_direction_legal(const eval::RouteSolution& sol, const grid::GCellGrid& grid) {
  for (const eval::NetRoute& net : sol.nets) {
    for (const dag::PatternPath& path : net.paths) {
      ASSERT_GE(path.waypoints.size(), 2u);
      for (std::size_t i = 0; i + 1 < path.waypoints.size(); ++i) {
        const geom::Point a = path.waypoints[i];
        const geom::Point b = path.waypoints[i + 1];
        EXPECT_TRUE(grid.in_bounds(a));
        EXPECT_TRUE(grid.in_bounds(b));
        EXPECT_TRUE(a.x == b.x || a.y == b.y)
            << "diagonal leg (" << a.x << "," << a.y << ")-(" << b.x << "," << b.y << ")";
      }
      for (const grid::EdgeId e : path.edges(grid)) {
        EXPECT_GE(e, 0);
        EXPECT_LT(e, grid.edge_count());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RoutingContext
// ---------------------------------------------------------------------------

TEST(RoutingContext, DerivesEq1CapacitiesByDefault) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  EXPECT_EQ(ctx.capacities(), d.capacities());
  EXPECT_EQ(ctx.capacities().size(), static_cast<std::size_t>(d.grid().edge_count()));
}

TEST(RoutingContext, ExplicitCapacitiesOverrideEq1) {
  const design::Design d = small_design();
  ContextOptions opts;
  opts.capacities.assign(static_cast<std::size_t>(d.grid().edge_count()), 7.0f);
  RoutingContext ctx(d, opts);
  EXPECT_FLOAT_EQ(ctx.capacities().front(), 7.0f);
  EXPECT_FLOAT_EQ(ctx.capacities().back(), 7.0f);
}

TEST(RoutingContext, CommitUncommitIsSymmetric) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Cugr2Router router;
  const eval::RouteSolution sol = router.route(ctx);
  // route() leaves the live demand equal to the solution's demand.
  const grid::DemandMap reference = sol.demand(ctx.via_beta());
  ASSERT_EQ(ctx.demand().raw().size(), reference.raw().size());
  for (std::size_t e = 0; e < reference.raw().size(); ++e) {
    EXPECT_NEAR(ctx.demand().raw()[e], reference.raw()[e], 1e-9);
  }
  ctx.commit(sol, -1.0);
  for (const double v : ctx.demand().raw()) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(RoutingContext, ForestIsCachedPerOptions) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  dag::ForestOptions opts;
  const dag::DagForest& a = ctx.forest(opts);
  const dag::DagForest& b = ctx.forest(opts);
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(ctx.has_forest(opts));
  // Rebuilding with different options frees the cached forest, so read
  // everything needed from `a` before requesting the other variant.
  const std::size_t base_paths = a.paths().size();
  dag::ForestOptions other = opts;
  other.paths.z_samples = 2;
  EXPECT_FALSE(ctx.has_forest(other));
  const dag::DagForest& c = ctx.forest(other);
  EXPECT_GT(c.paths().size(), base_paths);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, ResolvesAllFourRoutersByName) {
  for (const char* name : {"dgr", "cugr2-lite", "sproute-lite", "lagrangian"}) {
    EXPECT_TRUE(has_router(name)) << name;
    const std::unique_ptr<Router> r = make_router(name);
    ASSERT_NE(r, nullptr) << name;
    EXPECT_EQ(r->name(), name);
    EXPECT_FALSE(r->requires_warm_start()) << name;
  }
  EXPECT_TRUE(has_router("maze-refine"));
  EXPECT_TRUE(make_router("maze-refine")->requires_warm_start());
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_FALSE(has_router("no-such-router"));
  EXPECT_EQ(make_router("no-such-router"), nullptr);
}

TEST(Registry, CustomRegistrationIsVisible) {
  register_router("custom-cugr2", [](const RouterOptions& o) {
    return std::make_unique<Cugr2Router>(o.cugr2);
  });
  EXPECT_TRUE(has_router("custom-cugr2"));
  const auto names = registered_routers();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom-cugr2"), names.end());
  EXPECT_NE(make_router("custom-cugr2"), nullptr);
}

// ---------------------------------------------------------------------------
// Cross-router differential test (satellite): same design, same Pipeline,
// shared eval stage, for every registered router.
// ---------------------------------------------------------------------------

TEST(Differential, EveryRegisteredRouterRoutesTheSameDesignLegally) {
  util::set_log_level(util::LogLevel::kWarn);
  const design::Design d = small_design(/*seed=*/777);
  RoutingContext ctx(d);
  Pipeline pipe(ctx);

  eval::RouteSolution first_cold;  // feeds warm-start-only routers below
  for (const std::string& name : registered_routers()) {
    const std::unique_ptr<Router> router = make_router(name, fast_options());
    ASSERT_NE(router, nullptr) << name;

    PipelineResult result;
    if (router->requires_warm_start()) {
      ASSERT_FALSE(first_cold.nets.empty());
      result = pipe.rerun(*router, first_cold);
    } else {
      result = pipe.run(*router);
      if (first_cold.nets.empty()) first_cold = result.solution;
    }

    // Fully connected and direction-legal.
    ASSERT_EQ(result.solution.nets.size(), d.routable_nets().size()) << name;
    EXPECT_TRUE(result.solution.connects_all_pins()) << name;
    expect_direction_legal(result.solution, d.grid());

    // Metrics come from the shared eval stage and are self-consistent.
    const eval::Metrics check =
        eval::compute_metrics(result.solution, ctx.capacities(), ctx.via_beta());
    EXPECT_EQ(result.metrics.wirelength, check.wirelength) << name;
    EXPECT_EQ(result.metrics.overflow_edges, check.overflow_edges) << name;
    EXPECT_EQ(result.metrics.bends, check.bends) << name;
    EXPECT_GT(result.metrics.wirelength, 0) << name;
    EXPECT_GE(result.weighted_overflow, 0.0) << name;

    // Uniform stats: named router, at least one timed stage, 3D metrics.
    // (Registry keys may alias an adapter, so compare against the adapter's
    // own name rather than the lookup key.)
    EXPECT_EQ(result.stats.router, router->name());
    EXPECT_FALSE(result.stats.stages.empty()) << name;
    EXPECT_GT(result.stats.stage_seconds("route_total"), 0.0) << name;
    EXPECT_GT(result.layers.via_count, 0) << name;
  }
}

// ---------------------------------------------------------------------------
// Stage orchestration + stats
// ---------------------------------------------------------------------------

TEST(Pipeline, DgrRunReportsPerStageTimesAndSolverBytes) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  const PipelineResult r =
      pipe.run("dgr", fast_options(), StagePlan{.maze_refine = true, .layer_assign = true});
  EXPECT_EQ(r.stats.router, "dgr");
  for (const char* stage : {"forest", "train", "extract", "maze_refine", "layer_assign"}) {
    bool found = false;
    for (const auto& s : r.stats.stages) found |= (s.stage == stage);
    EXPECT_TRUE(found) << stage;
  }
  EXPECT_GT(r.stats.stage_seconds("train"), 0.0);
  EXPECT_GT(r.stats.solver_bytes, 0u);
  EXPECT_GT(r.stats.peak_rss_bytes, 0u);
  EXPECT_GT(r.stats.counter("iterations"), 0.0);
  EXPECT_GE(r.stats.total_seconds(), r.stats.stage_seconds("train"));
  EXPECT_TRUE(r.solution.connects_all_pins());
}

TEST(Pipeline, StagePlanSkipsOptionalStages) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  const PipelineResult r =
      pipe.run("cugr2-lite", {}, StagePlan{.maze_refine = false, .layer_assign = false});
  EXPECT_DOUBLE_EQ(r.stats.stage_seconds("maze_refine"), 0.0);
  EXPECT_DOUBLE_EQ(r.stats.stage_seconds("layer_assign"), 0.0);
  EXPECT_EQ(r.layers.via_count, 0);
  EXPECT_GT(r.metrics.wirelength, 0);
}

TEST(Pipeline, UnknownRouterNameYieldsEmptyResult) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  const PipelineResult r = pipe.run("no-such-router");
  EXPECT_TRUE(r.solution.nets.empty());
  EXPECT_TRUE(r.stats.router.empty());
}

// ---------------------------------------------------------------------------
// Warm start
// ---------------------------------------------------------------------------

TEST(WarmStart, MazeRefineImprovesOrMatchesPriorSolution) {
  util::set_log_level(util::LogLevel::kWarn);
  const design::Design d = small_design(/*seed=*/99);
  RoutingContext ctx(d);
  Pipeline pipe(ctx);

  const PipelineResult cold = pipe.run("dgr", fast_options());
  const PipelineResult refined = pipe.rerun("maze-refine", cold.solution);
  EXPECT_TRUE(refined.solution.connects_all_pins());
  // maze_refine is monotone in the weighted (overflow, WL, via) cost; at
  // minimum the overflow must not regress.
  EXPECT_LE(refined.metrics.total_overflow, cold.metrics.total_overflow + 1e-9);
  EXPECT_EQ(refined.stats.counter("warm_started", 1.0), 1.0);
}

TEST(WarmStart, Cugr2RrrReentryNeverWorsensOverflowEdges) {
  util::set_log_level(util::LogLevel::kWarn);
  const design::Design d = small_design(/*seed=*/31);
  RoutingContext ctx(d);
  Pipeline pipe(ctx);

  const PipelineResult prior = pipe.run("sproute-lite");
  const PipelineResult warm = pipe.rerun("cugr2-lite", prior.solution);
  EXPECT_TRUE(warm.solution.connects_all_pins());
  EXPECT_EQ(warm.stats.counter("warm_started"), 1.0);
  // Cugr2Lite keeps its best-seen snapshot, which includes the warm-start
  // state itself, so the RRR re-entry cannot regress the edge count.
  EXPECT_LE(warm.metrics.overflow_edges, prior.metrics.overflow_edges);
}

TEST(WarmStart, MazeRefineWithoutPriorReturnsEmpty) {
  util::set_log_level(util::LogLevel::kError);
  const design::Design d = small_design();
  RoutingContext ctx(d);
  MazeRefineRouter router;
  ctx.clear_warm_start();
  const eval::RouteSolution sol = router.route(ctx);
  EXPECT_TRUE(sol.nets.empty());
}

TEST(WarmStart, ColdRunClearsPreviousWarmState) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  const PipelineResult a = pipe.run("cugr2-lite");
  ctx.set_warm_start(a.solution);
  const PipelineResult b = pipe.run("cugr2-lite");  // run() = cold contract
  EXPECT_EQ(b.stats.counter("warm_started"), 0.0);
}

// ---------------------------------------------------------------------------
// Typed failure paths, stage budgets, degradation
// ---------------------------------------------------------------------------

TEST(Pipeline, UnknownRouterNameReportsNotFoundStatus) {
  util::set_log_level(util::LogLevel::kOff);
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  const PipelineResult r = pipe.run("no-such-router");
  EXPECT_EQ(r.stats.status.code(), StatusCode::kNotFound);
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(Pipeline, ColdMazeRefineSurfacesInvalidArgumentNotFallback) {
  // A refinement-only router run cold is a caller error: it must surface a
  // typed status, never silently degrade to a different engine.
  util::set_log_level(util::LogLevel::kError);
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  const PipelineResult r = pipe.run("maze-refine");
  EXPECT_EQ(r.stats.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(r.stats.degraded);
  EXPECT_TRUE(r.solution.nets.empty());
  EXPECT_GT(r.stats.peak_rss_bytes, 0u);  // failure paths still report memory
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(StageBudget, ExhaustedDgrBudgetDegradesToFallback) {
  util::set_log_level(util::LogLevel::kError);
  const design::Design d = small_design();
  RoutingContext ctx(d);
  PipelineOptions popts;
  popts.budgets.route_seconds = 1e-9;  // expires before the first iteration
  Pipeline pipe(ctx, popts);
  const PipelineResult r = pipe.run("dgr", fast_options());
  // The route stage timed out, the pipeline degraded to cugr2-lite through
  // the registry (warm-started from DGR's last healthy extraction), and the
  // run still produced full eval metrics.
  EXPECT_TRUE(r.stats.degraded);
  EXPECT_EQ(r.stats.router, "dgr");
  EXPECT_TRUE(r.stats.status.ok()) << r.stats.status.to_string();
  EXPECT_EQ(r.stats.counter("degraded"), 1.0);
  EXPECT_GT(r.stats.stage_seconds("fallback_route"), 0.0);
  ASSERT_FALSE(r.solution.nets.empty());
  EXPECT_TRUE(r.solution.connects_all_pins());
  expect_direction_legal(r.solution, d.grid());
  EXPECT_GT(r.metrics.wirelength, 0);
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(StageBudget, DisabledFallbackSurfacesStageTimeout) {
  util::set_log_level(util::LogLevel::kError);
  const design::Design d = small_design();
  RoutingContext ctx(d);
  PipelineOptions popts;
  popts.budgets.route_seconds = 1e-9;
  popts.budgets.fallback_router.clear();
  Pipeline pipe(ctx, popts);
  const PipelineResult r = pipe.run("dgr", fast_options());
  EXPECT_EQ(r.stats.status.code(), StatusCode::kStageTimeout);
  EXPECT_FALSE(r.stats.degraded);
  // The solver's best-checkpoint contract still yields a usable solution.
  ASSERT_FALSE(r.solution.nets.empty());
  EXPECT_TRUE(r.solution.connects_all_pins());
  EXPECT_GT(r.metrics.wirelength, 0);
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(StageBudget, BudgetedBaselineMarksDegradedWithoutFallback) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  PipelineOptions popts;
  popts.budgets.route_seconds = 1e-9;
  Pipeline pipe(ctx, popts);
  // cugr2-lite cut short by the budget still returns its whole initial
  // pass; it is marked degraded but needs no fallback (status stays OK).
  const PipelineResult r = pipe.run("cugr2-lite");
  EXPECT_TRUE(r.stats.degraded);
  EXPECT_TRUE(r.stats.status.ok());
  EXPECT_DOUBLE_EQ(r.stats.stage_seconds("fallback_route"), 0.0);
  EXPECT_TRUE(r.solution.connects_all_pins());
}

// ---------------------------------------------------------------------------
// Validation gate
// ---------------------------------------------------------------------------

TEST(ValidationGate, CleanRunValidatesAndStaysOk) {
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  const PipelineResult r = pipe.run("dgr", fast_options());
  EXPECT_TRUE(r.validation.status.ok());
  EXPECT_TRUE(r.validation.demand_consistent);
  EXPECT_EQ(r.stats.repaired_nets, 0);
  EXPECT_GT(r.validation.checked_nets, 0);
  bool has_validate_stage = false;
  for (const auto& s : r.stats.stages) has_validate_stage |= (s.stage == "validate");
  EXPECT_TRUE(has_validate_stage);
}

TEST(ValidationGate, RepairsDeliberatelyBrokenNet) {
  util::set_log_level(util::LogLevel::kError);
  const design::Design d = small_design();
  RoutingContext ctx(d);
  const std::unique_ptr<Router> router = make_router("cugr2-lite");
  eval::RouteSolution sol = router->route(ctx);
  ASSERT_FALSE(sol.nets.empty());

  // Break one net outright: drop its geometry while the live demand still
  // counts it. The gate must flag both the net and the accounting drift.
  sol.nets[0].paths.clear();
  const ValidationReport before = validate_solution(ctx, sol);
  EXPECT_EQ(before.status.code(), StatusCode::kValidationFailed);
  ASSERT_EQ(before.broken_nets, std::vector<std::size_t>{0});
  EXPECT_FALSE(before.demand_consistent);

  // Resync (what the pipeline does on drift), then repair.
  ctx.reset_demand();
  ctx.commit(sol);
  const std::int64_t repaired = repair_broken_nets(ctx, sol, before.broken_nets);
  EXPECT_EQ(repaired, 1);
  const ValidationReport after = validate_solution(ctx, sol);
  EXPECT_TRUE(after.status.ok()) << after.status.to_string();
  EXPECT_TRUE(sol.connects_all_pins());
  expect_direction_legal(sol, d.grid());
  util::set_log_level(util::LogLevel::kWarn);
}

TEST(ValidationGate, BrokenWarmStartIsRepairedInsidePipelineRun) {
  util::set_log_level(util::LogLevel::kError);
  const design::Design d = small_design();
  RoutingContext ctx(d);
  Pipeline pipe(ctx);
  // sproute-lite adopts warm-start routes verbatim for nets it does not rip
  // up; feeding it a solution with one gutted net exercises the in-pipeline
  // gate end to end.
  const PipelineResult prior = pipe.run("sproute-lite");
  eval::RouteSolution broken = prior.solution;
  ASSERT_FALSE(broken.nets.empty());
  broken.nets[0].paths.clear();
  const PipelineResult repaired = pipe.rerun("sproute-lite", std::move(broken));
  EXPECT_TRUE(repaired.stats.status.ok()) << repaired.stats.status.to_string();
  EXPECT_TRUE(repaired.solution.connects_all_pins());
  EXPECT_TRUE(repaired.validation.status.ok());
  util::set_log_level(util::LogLevel::kWarn);
}

}  // namespace
}  // namespace dgr::pipeline
