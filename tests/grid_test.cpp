#include <gtest/gtest.h>

#include <set>

#include "grid/demand_map.hpp"
#include "grid/gcell_grid.hpp"

namespace dgr::grid {
namespace {

TEST(GCellGrid, EdgeCountsMatchFormula) {
  const GCellGrid g(7, 5, {{Dir::kHorizontal, 2}, {Dir::kVertical, 3}});
  EXPECT_EQ(g.h_edge_count(), 6 * 5);
  EXPECT_EQ(g.v_edge_count(), 7 * 4);
  EXPECT_EQ(g.edge_count(), 30 + 28);
  EXPECT_EQ(g.cell_count(), 35);
}

TEST(GCellGrid, RejectsEmptyGrid) {
  EXPECT_THROW(GCellGrid(0, 5, {}), std::invalid_argument);
  EXPECT_THROW(GCellGrid(5, 0, {}), std::invalid_argument);
}

TEST(GCellGrid, CellIdRoundTrip) {
  const GCellGrid g = GCellGrid::uniform(9, 4, 2, 1);
  for (geom::Coord y = 0; y < 4; ++y) {
    for (geom::Coord x = 0; x < 9; ++x) {
      const CellId c = g.cell_id({x, y});
      EXPECT_EQ(g.cell_point(c), (geom::Point{x, y}));
    }
  }
}

TEST(GCellGrid, EdgeIdsAreDenseAndUnique) {
  const GCellGrid g = GCellGrid::uniform(6, 7, 2, 1);
  std::set<EdgeId> ids;
  for (geom::Coord y = 0; y < 7; ++y) {
    for (geom::Coord x = 0; x < 5; ++x) ids.insert(g.h_edge(x, y));
  }
  for (geom::Coord y = 0; y < 6; ++y) {
    for (geom::Coord x = 0; x < 6; ++x) ids.insert(g.v_edge(x, y));
  }
  EXPECT_EQ(static_cast<EdgeId>(ids.size()), g.edge_count());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), g.edge_count() - 1);
}

TEST(GCellGrid, EdgeCellsInverseOfEdgeBetween) {
  const GCellGrid g = GCellGrid::uniform(5, 5, 2, 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [a, b] = g.edge_cells(e);
    EXPECT_EQ(g.edge_between(a, b), e);
    EXPECT_EQ(g.edge_between(b, a), e);
    EXPECT_EQ(geom::manhattan(a, b), 1);
  }
}

TEST(GCellGrid, EdgeBetweenRejectsNonAdjacent) {
  const GCellGrid g = GCellGrid::uniform(5, 5, 2, 1);
  EXPECT_EQ(g.edge_between({0, 0}, {2, 0}), kInvalidEdge);
  EXPECT_EQ(g.edge_between({0, 0}, {1, 1}), kInvalidEdge);
  EXPECT_EQ(g.edge_between({0, 0}, {0, 0}), kInvalidEdge);
  EXPECT_EQ(g.edge_between({0, 0}, {-1, 0}), kInvalidEdge);
}

TEST(GCellGrid, EdgeDirMatchesGeometry) {
  const GCellGrid g = GCellGrid::uniform(4, 4, 2, 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [a, b] = g.edge_cells(e);
    if (a.y == b.y) {
      EXPECT_EQ(g.edge_dir(e), Dir::kHorizontal);
    } else {
      EXPECT_EQ(g.edge_dir(e), Dir::kVertical);
    }
  }
}

TEST(GCellGrid, UniformLayerStackAlternates) {
  const GCellGrid g = GCellGrid::uniform(4, 4, 5, 3, /*reserve_pin_layer=*/true);
  ASSERT_EQ(g.layer_count(), 5);
  EXPECT_EQ(g.layers()[0].dir, Dir::kHorizontal);
  EXPECT_EQ(g.layers()[0].tracks, 0);  // pin layer reserved
  EXPECT_EQ(g.layers()[1].dir, Dir::kVertical);
  EXPECT_EQ(g.layers()[1].tracks, 3);
  EXPECT_EQ(g.layers()[2].dir, Dir::kHorizontal);
  // Direction totals: H layers 0,2,4 -> 0+3+3; V layers 1,3 -> 3+3.
  EXPECT_EQ(g.direction_tracks(Dir::kHorizontal), 6);
  EXPECT_EQ(g.direction_tracks(Dir::kVertical), 6);
  EXPECT_EQ(g.direction_layers(Dir::kHorizontal), 3);
  EXPECT_EQ(g.direction_layers(Dir::kVertical), 2);
}

TEST(Capacity, NoPressureGivesBaseTracks) {
  const GCellGrid g = GCellGrid::uniform(4, 4, 2, 5);
  const auto cap = compute_capacities(g, {});
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_FLOAT_EQ(cap[static_cast<std::size_t>(e)], 5.0f);
  }
}

TEST(Capacity, PinDensityReducesCapacity) {
  const GCellGrid g = GCellGrid::uniform(3, 3, 2, 5);
  CapacityInputs in;
  in.pin_density.assign(static_cast<std::size_t>(g.cell_count()), 0.0f);
  in.pin_density[static_cast<std::size_t>(g.cell_id({1, 1}))] = 4.0f;  // centre cell
  in.beta_default = 0.5f;
  const auto cap = compute_capacities(g, in);
  // Centre cell has 4 incident edges; each gets beta*4/4 = 0.5 pressure.
  const EdgeId touching = g.h_edge(0, 1);  // (0,1)-(1,1)
  EXPECT_FLOAT_EQ(cap[static_cast<std::size_t>(touching)], 5.0f - 0.5f);
  // An edge not touching the centre keeps full capacity.
  const EdgeId far = g.h_edge(0, 0);
  EXPECT_FLOAT_EQ(cap[static_cast<std::size_t>(far)], 5.0f);
}

TEST(Capacity, TotalChargedPressureEqualsCellPressure) {
  // The per-edge split must conserve the total charge of a cell.
  const GCellGrid g = GCellGrid::uniform(5, 5, 2, 10);
  CapacityInputs in;
  in.pin_density.assign(static_cast<std::size_t>(g.cell_count()), 0.0f);
  in.pin_density[static_cast<std::size_t>(g.cell_id({2, 2}))] = 6.0f;
  in.beta_default = 1.0f;
  const auto cap = compute_capacities(g, in);
  double charged = 0.0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    charged += 10.0 - cap[static_cast<std::size_t>(e)];
  }
  EXPECT_NEAR(charged, 6.0, 1e-5);
}

TEST(Capacity, LocalNetsChargeWithoutBeta) {
  const GCellGrid g = GCellGrid::uniform(3, 3, 2, 5);
  CapacityInputs in;
  in.local_nets.assign(static_cast<std::size_t>(g.cell_count()), 0.0f);
  in.local_nets[static_cast<std::size_t>(g.cell_id({0, 0}))] = 2.0f;  // corner: 2 edges
  const auto cap = compute_capacities(g, in);
  EXPECT_FLOAT_EQ(cap[static_cast<std::size_t>(g.h_edge(0, 0))], 4.0f);
  EXPECT_FLOAT_EQ(cap[static_cast<std::size_t>(g.v_edge(0, 0))], 4.0f);
}

TEST(Capacity, ClampsAtZero) {
  const GCellGrid g = GCellGrid::uniform(3, 3, 2, 1);
  CapacityInputs in;
  in.pin_density.assign(static_cast<std::size_t>(g.cell_count()), 100.0f);
  const auto cap = compute_capacities(g, in);
  for (const float c : cap) EXPECT_GE(c, 0.0f);
}

TEST(Capacity, PerCellBetaOverridesDefault) {
  const GCellGrid g = GCellGrid::uniform(3, 1, 2, 5);
  CapacityInputs in;
  in.pin_density.assign(static_cast<std::size_t>(g.cell_count()), 2.0f);
  in.beta.assign(static_cast<std::size_t>(g.cell_count()), 0.0f);  // beta=0: no pin charge
  in.beta_default = 9.0f;                                          // would clamp everything
  const auto cap = compute_capacities(g, in);
  for (const float c : cap) EXPECT_FLOAT_EQ(c, 5.0f);
}

TEST(DemandMap, OverflowAccounting) {
  const GCellGrid g = GCellGrid::uniform(3, 3, 2, 1);
  DemandMap dm(g);
  std::vector<float> cap(static_cast<std::size_t>(g.edge_count()), 1.0f);
  EXPECT_EQ(dm.overflowed_edge_count(cap), 0);
  EXPECT_DOUBLE_EQ(dm.total_overflow(cap), 0.0);

  dm.add(g.h_edge(0, 0), 3.0);  // 2 over
  dm.add(g.v_edge(1, 1), 1.0);  // exactly at cap: not overflowed
  dm.add(g.v_edge(0, 0), 1.5);  // 0.5 over
  EXPECT_EQ(dm.overflowed_edge_count(cap), 2);
  EXPECT_DOUBLE_EQ(dm.total_overflow(cap), 2.5);
  EXPECT_DOUBLE_EQ(dm.peak_overflow(cap), 2.0);

  dm.clear();
  EXPECT_EQ(dm.overflowed_edge_count(cap), 0);
}

TEST(DemandMap, NegativeContributionsCancel) {
  const GCellGrid g = GCellGrid::uniform(3, 3, 2, 1);
  DemandMap dm(g);
  dm.add(0, 2.0);
  dm.add(0, -2.0);
  EXPECT_DOUBLE_EQ(dm.demand(0), 0.0);
}

TEST(DemandMap, CommitUncommitRoundTripIsByteIdentical) {
  // Non-dyadic via charges (e.g. via_beta = 0.3 -> ±0.15 per bend edge) are
  // not exactly representable, so naive += accumulation drifts when commits
  // and rip-ups interleave. The quantized add() snaps every increment to
  // the 2^-20 grid, making all sums exact and rip-up an exact inverse.
  const GCellGrid g = GCellGrid::uniform(6, 6, 4, 3);
  DemandMap dm(g);
  const double kVia = 0.3 * 0.5;  // via_beta/2, the charge eval applies
  const std::vector<double> amounts = {1.0, kVia, 0.7, kVia, 1.0, 0.1};

  // Commit a pile of "nets" (each touches a spread of edges), snapshot,
  // then interleave foreign commits with an exact rip-up of the pile.
  auto touch = [&](int net, double sign) {
    for (std::size_t k = 0; k < amounts.size(); ++k) {
      const auto e = static_cast<EdgeId>((net * 7 + static_cast<int>(k) * 11) %
                                         g.edge_count());
      dm.add(e, sign * amounts[k]);
    }
  };
  for (int net = 0; net < 16; ++net) touch(net, +1.0);
  const std::vector<double> snapshot = dm.raw();

  for (int net = 16; net < 24; ++net) touch(net, +1.0);  // foreign traffic
  for (int net = 16; net < 24; ++net) touch(net, -1.0);
  EXPECT_EQ(dm.raw(), snapshot);  // byte-identical, not just approximately

  for (int net = 15; net >= 0; --net) touch(net, -1.0);
  for (const double v : dm.raw()) EXPECT_EQ(v, 0.0);
}

TEST(DemandMap, QuantizeIsExactInverseUnderAccumulation) {
  // 10k interleaved ±x accumulations of an adversarial non-dyadic amount
  // land exactly back on zero.
  const GCellGrid g = GCellGrid::uniform(2, 2, 2, 1);
  DemandMap dm(g);
  for (int i = 0; i < 10000; ++i) dm.add(0, i % 2 == 0 ? 0.3 : -0.3);
  EXPECT_EQ(dm.demand(0), 0.0);
}

class GridSizeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GridSizeSweep, EdgeEnumerationConsistent) {
  const auto [w, h] = GetParam();
  const GCellGrid g = GCellGrid::uniform(w, h, 3, 2);
  std::set<EdgeId> seen;
  for (geom::Coord y = 0; y < h; ++y) {
    for (geom::Coord x = 0; x < w; ++x) {
      const geom::Point p{x, y};
      const geom::Point right{static_cast<geom::Coord>(x + 1), y};
      const geom::Point up{x, static_cast<geom::Coord>(y + 1)};
      if (x + 1 < w) seen.insert(g.edge_between(p, right));
      if (y + 1 < h) seen.insert(g.edge_between(p, up));
    }
  }
  EXPECT_EQ(static_cast<EdgeId>(seen.size()), g.edge_count());
  EXPECT_FALSE(seen.count(kInvalidEdge));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridSizeSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 8},
                                           std::pair{8, 1}, std::pair{2, 2},
                                           std::pair{13, 7}, std::pair{32, 32}));

}  // namespace
}  // namespace dgr::grid
