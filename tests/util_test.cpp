#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "util/log.hpp"
#include "util/memprobe.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dgr::util {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(21);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GumbelMeanIsEulerMascheroni) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gumbel();
  EXPECT_NEAR(sum / n, 0.5772, 0.02);
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng parent(5);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 200; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(5), p2(5);
  Rng a = p1.fork(99), b = p2.fork(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(41);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);  // same multiset
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 64);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, DeterministicAcrossWorkerCounts) {
  // Each index owns its output slot -> result independent of thread count.
  const std::size_t n = 50000;
  auto run = [&](std::size_t workers) {
    set_worker_count(workers);
    std::vector<double> out(n);
    parallel_for_blocked(0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = std::sin(static_cast<double>(i));
    });
    set_worker_count(0);
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(2), run(8));
}

TEST(ParallelFor, SmallRangeRunsInlineOnCallingThread) {
  // Fast path: a range that fits in one grain must not wake the pool.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(100);
  parallel_for(0, 100, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); },
               /*grain=*/1024);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, SingleWorkerRunsInlineOnCallingThread) {
  set_worker_count(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  parallel_for_blocked(0, 100000, [&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() != caller) off_thread.store(true);
  }, /*grain=*/64);
  set_worker_count(0);
  EXPECT_FALSE(off_thread.load());
}

TEST(ParallelFor, GrainZeroIsTreatedAsOne) {
  const std::size_t n = 3000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/0);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  std::atomic<std::size_t> covered{0};
  parallel_for_blocked(0, n, [&](std::size_t lo, std::size_t hi) {
    covered.fetch_add(hi - lo);
  }, /*grain=*/0);
  EXPECT_EQ(covered.load(), n);
}

TEST(ParallelFor, RangeSmallerThanGrainExecutesExactlyOnce) {
  std::vector<std::atomic<int>> hits(10);
  parallel_for_blocked(0, 10, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  }, /*grain=*/4096);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, BackToBackSubmissionsFromMainThread) {
  // Hammers the pool's start/finish handshake: no deadlock, exactly-once
  // execution for every submission, across several worker counts.
  for (const std::size_t workers : {2u, 4u, 0u}) {
    set_worker_count(workers);
    const std::size_t n = 4096;
    std::vector<std::atomic<int>> hits(n);
    for (int round = 0; round < 100; ++round) {
      parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/16);
    }
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 100) << i;
  }
  set_worker_count(0);
}

TEST(ParallelFor, BlockedChunksPartitionRange) {
  std::atomic<std::size_t> total{0};
  parallel_for_blocked(10, 1010, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo);
  }, 16);
  EXPECT_EQ(total.load(), 1000u);
}

TEST(FusedStages, LaterStagesSeeEarlierStageWrites) {
  // Stage 2 reads stage 1's output at a *different* index (the mirror), so
  // it only works if the inter-stage barrier publishes all of stage 1.
  for (const std::size_t workers : {1u, 2u, 4u, 0u}) {
    set_worker_count(workers);
    const std::size_t n = 30000;
    std::vector<double> a(n, 0.0), b(n, 0.0);
    ParallelRuntime::fused(
        stage_blocked(0, n, 64,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          a[i] = static_cast<double>(i);
                        }
                      }),
        stage_blocked(0, n, 128, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) b[i] = a[i] + a[n - 1 - i];
        }));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(b[i], static_cast<double>(n - 1)) << "workers=" << workers << " i=" << i;
    }
  }
  set_worker_count(0);
}

TEST(FusedStages, ExactlyOnceExecutionPerStage) {
  for (const std::size_t workers : {1u, 3u, 0u}) {
    set_worker_count(workers);
    const std::size_t n = 12345;
    std::vector<std::atomic<int>> s1(n), s2(n), s3(n);
    ParallelRuntime::fused(
        stage_blocked(0, n, 7,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) s1[i].fetch_add(1);
                      }),
        stage_blocked(0, n, 4096,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) s2[i].fetch_add(1);
                      }),
        stage_blocked(0, n, 0,  // grain 0 must behave as 1
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) s3[i].fetch_add(1);
                      }));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(s1[i].load(), 1);
      ASSERT_EQ(s2[i].load(), 1);
      ASSERT_EQ(s3[i].load(), 1);
    }
  }
  set_worker_count(0);
}

TEST(FusedStages, EmptyAndMixedSizeStages) {
  // Empty stages must not deadlock the barrier; a tiny stage fused with a
  // large one still executes exactly once each.
  set_worker_count(4);
  std::atomic<int> tiny{0};
  std::atomic<std::size_t> covered{0};
  ParallelRuntime::fused(
      stage_blocked(5, 5, 16, [&](std::size_t, std::size_t) { tiny.fetch_add(1000); }),
      stage_blocked(0, 1, 16, [&](std::size_t, std::size_t) { tiny.fetch_add(1); }),
      stage_blocked(0, 100000, 256, [&](std::size_t lo, std::size_t hi) {
        covered.fetch_add(hi - lo);
      }));
  set_worker_count(0);
  EXPECT_EQ(tiny.load(), 1);          // empty stage never ran
  EXPECT_EQ(covered.load(), 100000u);  // large stage fully covered
}

TEST(FusedStages, DeterministicBlockReduction) {
  // The canonical ownership-based reduction: fixed blocks -> owned partial
  // slots -> ordered combine. Bitwise identical for every worker count.
  const std::size_t n = 100000;
  const std::size_t block = 512;
  const std::size_t blocks = (n + block - 1) / block;
  auto run = [&](std::size_t workers) {
    set_worker_count(workers);
    std::vector<double> x(n), partials(blocks, 0.0);
    ParallelRuntime::fused(
        stage_blocked(0, n, 4096,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          x[i] = std::sin(static_cast<double>(i)) * 1e-3;
                        }
                      }),
        stage_blocked(0, blocks, 1, [&](std::size_t blo, std::size_t bhi) {
          for (std::size_t b = blo; b < bhi; ++b) {
            double acc = 0.0;
            const std::size_t hi = std::min(n, (b + 1) * block);
            for (std::size_t i = b * block; i < hi; ++i) acc += x[i];
            partials[b] = acc;
          }
        }));
    set_worker_count(0);
    double total = 0.0;
    for (const double p : partials) total += p;
    return total;
  };
  const double t1 = run(1);
  EXPECT_EQ(t1, run(2));
  EXPECT_EQ(t1, run(4));
  EXPECT_EQ(t1, run(0));
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
  EXPECT_LT(t.millis(), 5000.0);
}

TEST(StopWatch, AccumulatesWindows) {
  StopWatch sw;
  sw.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.stop();
  const double first = sw.total_seconds();
  EXPECT_GT(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_DOUBLE_EQ(sw.total_seconds(), first);  // stopped: no accumulation
  sw.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.stop();
  EXPECT_GT(sw.total_seconds(), first);
}

TEST(MemProbe, ReportsPlausibleRss) {
  const std::size_t rss = current_rss_bytes();
  const std::size_t peak = peak_rss_bytes();
  EXPECT_GT(rss, 1024u * 1024u);  // a running process uses > 1 MiB
  EXPECT_GE(peak, rss / 2);       // peak can't be (much) below current
}

TEST(Log, SilencerRestoresLevel) {
  set_log_level(LogLevel::kWarn);
  {
    LogSilencer quiet;
    EXPECT_EQ(log_level(), LogLevel::kOff);
  }
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kInfo);
}

}  // namespace
}  // namespace dgr::util
