#include <gtest/gtest.h>

#include <limits>

#include "design/generator.hpp"
#include "eval/metrics.hpp"
#include "routers/cugr2lite.hpp"
#include "routers/lagrangian.hpp"
#include "routers/maze.hpp"
#include "routers/sproute_lite.hpp"
#include "util/log.hpp"

namespace dgr::routers {
namespace {

using design::Design;
using design::Net;
using geom::Point;
using grid::GCellGrid;

// ---------------------------------------------------------------------------
// Maze routing primitive
// ---------------------------------------------------------------------------

TEST(Maze, FindsManhattanShortestPathOnUniformCosts) {
  const GCellGrid grid = GCellGrid::uniform(10, 10, 2, 1);
  const MazeResult r = maze_route(grid, {{1, 1}}, {7, 5}, [](grid::EdgeId) { return 1.0; });
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
  EXPECT_EQ(r.cells.size(), 11u);
  EXPECT_EQ(r.cells.front(), (Point{1, 1}));
  EXPECT_EQ(r.cells.back(), (Point{7, 5}));
  for (std::size_t i = 0; i + 1 < r.cells.size(); ++i) {
    EXPECT_EQ(geom::manhattan(r.cells[i], r.cells[i + 1]), 1);
  }
}

TEST(Maze, DetoursAroundExpensiveWall) {
  const GCellGrid grid = GCellGrid::uniform(7, 7, 2, 1);
  // Wall of expensive vertical edges at y=3 except a gap at x=6.
  auto cost = [&](grid::EdgeId e) {
    const auto [a, b] = grid.edge_cells(e);
    if (a.x == b.x && std::min(a.y, b.y) == 3 && a.x != 6) return 1000.0;
    return 1.0;
  };
  const MazeResult r = maze_route(grid, {{0, 0}}, {0, 6}, cost);
  ASSERT_TRUE(r.found);
  EXPECT_LT(r.cost, 1000.0);  // went through the gap
  bool visits_gap_column = false;
  for (const Point& c : r.cells) visits_gap_column |= (c.x == 6);
  EXPECT_TRUE(visits_gap_column);
}

TEST(Maze, MultiSourcePicksNearest) {
  const GCellGrid grid = GCellGrid::uniform(10, 10, 2, 1);
  const MazeResult r =
      maze_route(grid, {{0, 0}, {8, 8}}, {7, 7}, [](grid::EdgeId) { return 1.0; });
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);  // from (8,8)
  EXPECT_EQ(r.cells.front(), (Point{8, 8}));
}

TEST(Maze, SourceEqualsTarget) {
  const GCellGrid grid = GCellGrid::uniform(5, 5, 2, 1);
  const MazeResult r = maze_route(grid, {{2, 2}}, {2, 2}, [](grid::EdgeId) { return 1.0; });
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.cells.size(), 1u);
  EXPECT_TRUE(r.status.ok());
}

TEST(Maze, UnreachableTargetReportsTypedStatus) {
  // An all-infinite cost surface strands the target: the result must say
  // *why* there is no path, not just hand back an empty cell list.
  const GCellGrid grid = GCellGrid::uniform(6, 6, 2, 1);
  const MazeResult r = maze_route(grid, {{0, 0}}, {5, 5}, [](grid::EdgeId) {
    return std::numeric_limits<double>::infinity();
  });
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.cells.empty());
  EXPECT_EQ(r.status.code(), StatusCode::kUnreachableTarget);
  EXPECT_FALSE(r.status.message().empty());
}

TEST(Maze, EmptySourceSetIsInvalidArgument) {
  const GCellGrid grid = GCellGrid::uniform(6, 6, 2, 1);
  const MazeResult r = maze_route(grid, {}, {5, 5}, [](grid::EdgeId) { return 1.0; });
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(CompressCells, MergesCollinearRuns) {
  const std::vector<Point> cells{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}, {3, 2}};
  const dag::PatternPath p = compress_cells(cells);
  EXPECT_EQ(p.waypoints,
            (std::vector<Point>{{0, 0}, {2, 0}, {2, 2}, {3, 2}}));
  EXPECT_EQ(p.length(), 5);
  EXPECT_EQ(p.bend_count(), 2u);
}

TEST(CompressCells, SingleCell) {
  const dag::PatternPath p = compress_cells({{4, 4}});
  EXPECT_EQ(p.waypoints.size(), 2u);
  EXPECT_EQ(p.length(), 0);
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

Design easy_design() {
  design::IspdLikeParams p;
  p.name = "easy";
  p.grid_w = p.grid_h = 24;
  p.num_nets = 150;
  p.layers = 6;
  p.tracks_per_layer = 6;
  p.hotspot_affinity = 0.2;
  return design::generate_ispd_like(p, 101);
}

Design congested_design() {
  design::IspdLikeParams p;
  p.name = "congested";
  p.grid_w = p.grid_h = 20;
  p.num_nets = 500;
  p.layers = 5;
  p.tracks_per_layer = 2;
  p.hotspots = 2;
  p.hotspot_affinity = 0.7;
  return design::generate_ispd_like(p, 202);
}

template <typename Router>
eval::RouteSolution run_router(const Design& d) {
  Router router(d, d.capacities());
  return router.route();
}

// ---------------------------------------------------------------------------
// CUGR2-lite
// ---------------------------------------------------------------------------

TEST(Cugr2Lite, ConnectsAllPins) {
  const Design d = easy_design();
  const eval::RouteSolution sol = run_router<Cugr2Lite>(d);
  EXPECT_EQ(sol.nets.size(), d.routable_nets().size());
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(Cugr2Lite, ZeroOverflowOnEasyDesign) {
  const Design d = easy_design();
  Cugr2Lite router(d, d.capacities());
  Cugr2LiteStats stats;
  const eval::RouteSolution sol = router.route(&stats);
  const eval::Metrics m = eval::compute_metrics(sol, d.capacities());
  EXPECT_EQ(m.overflow_edges, 0);
  EXPECT_GT(stats.nets_rerouted, 0);
}

TEST(Cugr2Lite, RrrReducesOverflow) {
  const Design d = congested_design();
  const auto cap = d.capacities();
  Cugr2LiteOptions no_rrr;
  no_rrr.rrr_rounds = 0;
  Cugr2LiteOptions full;
  full.rrr_rounds = 6;
  Cugr2Lite a(d, cap, no_rrr), b(d, cap, full);
  const auto ma = eval::compute_metrics(a.route(), cap);
  const auto mb = eval::compute_metrics(b.route(), cap);
  EXPECT_LE(mb.overflow_edges, ma.overflow_edges);
}

TEST(Cugr2Lite, WirelengthNearHpwlOnEasyDesign) {
  const Design d = easy_design();
  const eval::RouteSolution sol = run_router<Cugr2Lite>(d);
  std::int64_t hpwl = 0;
  for (const std::size_t n : d.routable_nets()) {
    hpwl += geom::Rect::bounding_box(d.net(n).pins).hpwl();
  }
  const eval::Metrics m = eval::compute_metrics(sol, d.capacities());
  EXPECT_GE(m.wirelength, hpwl);
  EXPECT_LE(m.wirelength, 2 * hpwl);  // pattern routes stay near-minimal
}

TEST(Cugr2Lite, TimeBudgetStopsRrrButReturnsWholeSolution) {
  const Design d = congested_design();
  Cugr2LiteOptions opts;
  opts.rrr_rounds = 1000;  // would run forever without the budget
  opts.time_budget_seconds = 1e-9;
  Cugr2Lite router(d, d.capacities(), opts);
  Cugr2LiteStats stats;
  const eval::RouteSolution sol = router.route(&stats);
  EXPECT_TRUE(stats.timed_out);
  EXPECT_EQ(stats.rounds_run, 0);  // initial pass completed, no RRR round ran
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(SpRouteLite, TimeBudgetStopsNegotiationButReturnsWholeSolution) {
  const Design d = congested_design();
  SpRouteLiteOptions opts;
  opts.max_rounds = 1000;
  opts.time_budget_seconds = 1e-9;
  SpRouteLite router(d, d.capacities(), opts);
  SpRouteLiteStats stats;
  const eval::RouteSolution sol = router.route(&stats);
  EXPECT_TRUE(stats.timed_out);
  EXPECT_TRUE(sol.connects_all_pins());
}

// ---------------------------------------------------------------------------
// SPRoute-lite
// ---------------------------------------------------------------------------

TEST(SpRouteLite, ConnectsAllPins) {
  const Design d = easy_design();
  const eval::RouteSolution sol = run_router<SpRouteLite>(d);
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(SpRouteLite, NegotiationClearsEasyCongestion) {
  const Design d = easy_design();
  SpRouteLite router(d, d.capacities());
  SpRouteLiteStats stats;
  const eval::RouteSolution sol = router.route(&stats);
  const eval::Metrics m = eval::compute_metrics(sol, d.capacities());
  EXPECT_EQ(m.overflow_edges, 0);
}

TEST(SpRouteLite, HistoryImprovesCongestedResult) {
  const Design d = congested_design();
  const auto cap = d.capacities();
  SpRouteLiteOptions one_round;
  one_round.max_rounds = 0;
  SpRouteLiteOptions many;
  many.max_rounds = 8;
  SpRouteLite a(d, cap, one_round), b(d, cap, many);
  const auto ma = eval::compute_metrics(a.route(), cap);
  const auto mb = eval::compute_metrics(b.route(), cap);
  EXPECT_LE(mb.overflow_edges, ma.overflow_edges);
}

// ---------------------------------------------------------------------------
// Lagrangian router
// ---------------------------------------------------------------------------

TEST(Lagrangian, ConnectsAllPins) {
  const Design d = easy_design();
  const eval::RouteSolution sol = run_router<LagrangianRouter>(d);
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(Lagrangian, PricesResolveEasyCongestion) {
  const Design d = easy_design();
  LagrangianRouter router(d, d.capacities());
  LagrangianStats stats;
  const eval::RouteSolution sol = router.route(&stats);
  const eval::Metrics m = eval::compute_metrics(sol, d.capacities());
  EXPECT_EQ(m.overflow_edges, 0);
  EXPECT_GT(stats.rounds_run, 0);
}

TEST(Lagrangian, MoreRoundsNeverWorse) {
  const Design d = congested_design();
  const auto cap = d.capacities();
  LagrangianOptions few;
  few.rounds = 2;
  LagrangianOptions many;
  many.rounds = 15;
  LagrangianRouter a(d, cap, few), b(d, cap, many);
  const auto ma = eval::compute_metrics(a.route(), cap);
  const auto mb = eval::compute_metrics(b.route(), cap);
  // The router keeps its best-seen primal solution, so more rounds can only
  // improve the kept overflow.
  EXPECT_LE(mb.overflow_edges, ma.overflow_edges);
}

// ---------------------------------------------------------------------------
// Cross-router sanity
// ---------------------------------------------------------------------------

class AllRouters : public ::testing::TestWithParam<int> {};

TEST_P(AllRouters, EveryRouterRoutesEveryNetOfACongestedCase) {
  const Design d = congested_design();
  const auto cap = d.capacities();
  eval::RouteSolution sol;
  switch (GetParam()) {
    case 0: sol = Cugr2Lite(d, cap).route(); break;
    case 1: sol = SpRouteLite(d, cap).route(); break;
    case 2: sol = LagrangianRouter(d, cap).route(); break;
  }
  ASSERT_EQ(sol.nets.size(), d.routable_nets().size());
  EXPECT_TRUE(sol.connects_all_pins());
  for (const auto& net : sol.nets) {
    EXPECT_FALSE(net.paths.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Routers, AllRouters, ::testing::Values(0, 1, 2));


TEST(Cugr2Lite, ZPathsDoNotBreakRouting) {
  const Design d = easy_design();
  Cugr2LiteOptions opts;
  opts.paths.z_samples = 2;
  Cugr2Lite router(d, d.capacities(), opts);
  const eval::RouteSolution sol = router.route();
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(SpRouteLite, DeterministicAcrossRuns) {
  const Design d = easy_design();
  const auto cap = d.capacities();
  SpRouteLite a(d, cap), b(d, cap);
  const auto ma = eval::compute_metrics(a.route(), cap);
  const auto mb = eval::compute_metrics(b.route(), cap);
  EXPECT_EQ(ma.wirelength, mb.wirelength);
  EXPECT_EQ(ma.overflow_edges, mb.overflow_edges);
  EXPECT_EQ(ma.bends, mb.bends);
}

TEST(Lagrangian, RepairPhaseNeverWorsensOverflow) {
  const Design d = congested_design();
  const auto cap = d.capacities();
  LagrangianOptions no_repair;
  no_repair.repair_rounds = 0;
  LagrangianOptions with_repair;
  with_repair.repair_rounds = 8;
  LagrangianRouter a(d, cap, no_repair), b(d, cap, with_repair);
  const auto ma = eval::compute_metrics(a.route(), cap);
  const auto mb = eval::compute_metrics(b.route(), cap);
  EXPECT_LE(mb.overflow_edges, ma.overflow_edges);
}

}  // namespace
}  // namespace dgr::routers
