#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ad/adam.hpp"
#include "ad/gradcheck.hpp"
#include "ad/ops.hpp"
#include "ad/simd.hpp"
#include "ad/tape.hpp"
#include "util/rng.hpp"

namespace dgr::ad {
namespace {

std::vector<float> random_vec(util::Rng& rng, std::size_t n, float scale = 1.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal()) * scale;
  return v;
}

// ---------------------------------------------------------------------------
// Tape basics
// ---------------------------------------------------------------------------

TEST(Tape, InputHoldsValues) {
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(tape.size(x), 3u);
  EXPECT_FLOAT_EQ(tape.value(x)[1], 2.0f);
}

TEST(Tape, BackwardRequiresScalarRoot) {
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f});
  EXPECT_THROW(tape.backward(x), std::invalid_argument);
}

TEST(Tape, InvalidNodeIdThrows) {
  Tape tape;
  EXPECT_THROW(tape.value(NodeId{}), std::out_of_range);
  EXPECT_THROW(tape.value(NodeId{5}), std::out_of_range);
}

TEST(Tape, MemoryBytesGrowsWithNodes) {
  Tape tape;
  const std::size_t before = tape.memory_bytes();
  tape.input(std::vector<float>(1000, 1.0f));
  EXPECT_GT(tape.memory_bytes(), before);
}

// ---------------------------------------------------------------------------
// segment_softmax
// ---------------------------------------------------------------------------

TEST(SegmentSoftmax, GroupsSumToOne) {
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f, 3.0f, -1.0f, 0.5f});
  const std::vector<std::int32_t> offsets{0, 3, 5};
  const NodeId y = segment_softmax(tape, x, offsets, 1.0f);
  const auto& v = tape.value(y);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-6);
  EXPECT_NEAR(v[3] + v[4], 1.0, 1e-6);
  for (const float p : v) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(SegmentSoftmax, MatchesClosedForm) {
  Tape tape;
  const NodeId x = tape.input({0.0f, std::log(3.0f)});
  const std::vector<std::int32_t> offsets{0, 2};
  const NodeId y = segment_softmax(tape, x, offsets, 1.0f);
  EXPECT_NEAR(tape.value(y)[0], 0.25, 1e-6);
  EXPECT_NEAR(tape.value(y)[1], 0.75, 1e-6);
}

TEST(SegmentSoftmax, LowTemperatureSharpens) {
  const std::vector<float> logits{1.0f, 1.5f, 0.2f};
  const std::vector<std::int32_t> offsets{0, 3};
  Tape t1, t2;
  const auto y1 = segment_softmax(t1, t1.input(logits), offsets, 1.0f);
  const auto y2 = segment_softmax(t2, t2.input(logits), offsets, 0.1f);
  EXPECT_GT(t2.value(y2)[1], t1.value(y1)[1]);
  EXPECT_GT(t2.value(y2)[1], 0.98f);
}

TEST(SegmentSoftmax, NoiseShiftsDistribution) {
  const std::vector<float> logits{0.0f, 0.0f};
  const std::vector<std::int32_t> offsets{0, 2};
  const std::vector<float> noise{5.0f, 0.0f};
  Tape tape;
  const auto y = segment_softmax(tape, tape.input(logits), offsets, 1.0f, &noise);
  EXPECT_GT(tape.value(y)[0], 0.9f);
}

TEST(SegmentSoftmax, StableUnderLargeLogits) {
  Tape tape;
  const NodeId x = tape.input({1000.0f, 1001.0f});
  const std::vector<std::int32_t> offsets{0, 2};
  const NodeId y = segment_softmax(tape, x, offsets, 1.0f);
  EXPECT_NEAR(tape.value(y)[0] + tape.value(y)[1], 1.0, 1e-6);
  EXPECT_FALSE(std::isnan(tape.value(y)[0]));
}

TEST(SegmentSoftmax, SingletonGroupIsOne) {
  Tape tape;
  const NodeId x = tape.input({-7.3f});
  const std::vector<std::int32_t> offsets{0, 1};
  const NodeId y = segment_softmax(tape, x, offsets, 0.5f);
  EXPECT_FLOAT_EQ(tape.value(y)[0], 1.0f);
}

TEST(SegmentSoftmax, RejectsBadArguments) {
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f});
  const std::vector<std::int32_t> wrong{0, 3};
  EXPECT_THROW(segment_softmax(tape, x, wrong, 1.0f), std::invalid_argument);
  const std::vector<std::int32_t> ok{0, 2};
  EXPECT_THROW(segment_softmax(tape, x, ok, 0.0f), std::invalid_argument);
}

TEST(SegmentSoftmax, GradCheck) {
  util::Rng rng(3);
  const std::vector<float> x0 = random_vec(rng, 7);
  const std::vector<std::int32_t> offsets{0, 3, 4, 7};
  const std::vector<float> weights{0.3f, -1.0f, 2.0f, 0.7f, 1.1f, -0.2f, 0.5f};
  auto f = [&](const std::vector<float>& x) {
    Tape tape;
    const NodeId y = segment_softmax(tape, tape.input(x), offsets, 0.7f);
    return static_cast<double>(tape.value(weighted_sum(tape, y, weights))[0]);
  };
  Tape tape;
  const NodeId x = tape.input(x0);
  const NodeId y = segment_softmax(tape, x, offsets, 0.7f);
  tape.backward(weighted_sum(tape, y, weights));
  const auto r = grad_check(f, x0, tape.grad(x));
  EXPECT_TRUE(r.ok) << "max_abs_err=" << r.max_abs_err << " at " << r.worst_index;
}

// ---------------------------------------------------------------------------
// gather_mul
// ---------------------------------------------------------------------------

TEST(GatherMul, ForwardMatchesDefinition) {
  Tape tape;
  const NodeId q = tape.input({2.0f, 3.0f});
  const NodeId p = tape.input({1.0f, 0.5f, 4.0f});
  const std::vector<std::int32_t> index{0, 1, 1};
  const NodeId y = gather_mul(tape, q, index, p);
  EXPECT_FLOAT_EQ(tape.value(y)[0], 2.0f);
  EXPECT_FLOAT_EQ(tape.value(y)[1], 1.5f);
  EXPECT_FLOAT_EQ(tape.value(y)[2], 12.0f);
}

TEST(GatherMul, GradCheckBothInputs) {
  util::Rng rng(5);
  const std::vector<float> q0 = random_vec(rng, 3);
  const std::vector<float> p0 = random_vec(rng, 6);
  const std::vector<std::int32_t> index{0, 0, 1, 2, 2, 1};
  const std::vector<float> w{1.0f, -2.0f, 0.5f, 3.0f, 1.5f, -1.0f};

  auto run = [&](const std::vector<float>& q, const std::vector<float>& p, Tape& tape,
                 NodeId* qn, NodeId* pn) {
    *qn = tape.input(q);
    *pn = tape.input(p);
    return weighted_sum(tape, gather_mul(tape, *qn, index, *pn), w);
  };
  Tape tape;
  NodeId qn, pn;
  tape.backward(run(q0, p0, tape, &qn, &pn));

  auto fq = [&](const std::vector<float>& q) {
    Tape t;
    NodeId a, b;
    return static_cast<double>(t.value(run(q, p0, t, &a, &b))[0]);
  };
  auto fp = [&](const std::vector<float>& p) {
    Tape t;
    NodeId a, b;
    return static_cast<double>(t.value(run(q0, p, t, &a, &b))[0]);
  };
  EXPECT_TRUE(grad_check(fq, q0, tape.grad(qn)).ok);
  EXPECT_TRUE(grad_check(fp, p0, tape.grad(pn)).ok);
}

// ---------------------------------------------------------------------------
// spmv
// ---------------------------------------------------------------------------

struct TinyCsr {
  std::vector<std::uint32_t> fwd_off{0, 2, 3, 5};
  std::vector<std::int32_t> fwd_cols{0, 1, 1, 0, 2};
  std::vector<float> fwd_w{1.0f, 2.0f, 0.5f, 1.5f, 1.0f};
  // transpose: x0 -> rows {0 (w1), 2 (w1.5)}, x1 -> {0 (w2), 1 (w0.5)},
  //            x2 -> {2 (w1)}
  std::vector<std::uint32_t> bwd_off{0, 2, 4, 5};
  std::vector<std::int32_t> bwd_cols{0, 2, 0, 1, 2};
  std::vector<float> bwd_w{1.0f, 1.5f, 2.0f, 0.5f, 1.0f};

  SparseIncidence inc() const {
    return SparseIncidence{&fwd_off, &fwd_cols, &fwd_w, &bwd_off, &bwd_cols, &bwd_w};
  }
};

TEST(Spmv, ForwardMatchesDenseProduct) {
  TinyCsr csr;
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f, 3.0f});
  const NodeId y = spmv(tape, x, csr.inc());
  ASSERT_EQ(tape.size(y), 3u);
  EXPECT_FLOAT_EQ(tape.value(y)[0], 1.0f * 1 + 2.0f * 2);
  EXPECT_FLOAT_EQ(tape.value(y)[1], 0.5f * 2);
  EXPECT_FLOAT_EQ(tape.value(y)[2], 1.5f * 1 + 1.0f * 3);
}

TEST(Spmv, GradCheck) {
  TinyCsr csr;
  const std::vector<float> x0{0.3f, -1.2f, 2.2f};
  const std::vector<float> w{1.0f, -0.5f, 2.0f};
  auto f = [&](const std::vector<float>& x) {
    Tape t;
    return static_cast<double>(t.value(weighted_sum(t, spmv(t, t.input(x), csr.inc()), w))[0]);
  };
  Tape tape;
  const NodeId x = tape.input(x0);
  tape.backward(weighted_sum(tape, spmv(tape, x, csr.inc()), w));
  EXPECT_TRUE(grad_check(f, x0, tape.grad(x)).ok);
}

TEST(Spmv, RejectsInconsistentCsr) {
  TinyCsr csr;
  csr.bwd_off = {0, 1};  // claims x has size 1
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f, 3.0f});
  EXPECT_THROW(spmv(tape, x, csr.inc()), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// sub_const + activations
// ---------------------------------------------------------------------------

TEST(SubConst, Forward) {
  Tape tape;
  const NodeId x = tape.input({3.0f, 1.0f});
  const NodeId y = sub_const(tape, x, {1.0f, 5.0f});
  EXPECT_FLOAT_EQ(tape.value(y)[0], 2.0f);
  EXPECT_FLOAT_EQ(tape.value(y)[1], -4.0f);
}

TEST(Activations, ForwardValues) {
  Tape tape;
  const NodeId x = tape.input({-2.0f, 0.0f, 3.0f});
  const auto relu = apply_activation(tape, x, Activation::kReLU);
  EXPECT_FLOAT_EQ(tape.value(relu)[0], 0.0f);
  EXPECT_FLOAT_EQ(tape.value(relu)[2], 3.0f);
  const auto sig = apply_activation(tape, x, Activation::kSigmoid);
  EXPECT_NEAR(tape.value(sig)[1], 0.5, 1e-6);
  EXPECT_NEAR(tape.value(sig)[0], 1.0 / (1.0 + std::exp(2.0)), 1e-6);
  const auto leaky = apply_activation(tape, x, Activation::kLeakyReLU, 1.0f);
  EXPECT_NEAR(tape.value(leaky)[0], -0.02, 1e-6);
  const auto ex = apply_activation(tape, x, Activation::kExp);
  EXPECT_NEAR(tape.value(ex)[2], std::exp(3.0), 1e-3);
  const auto celu = apply_activation(tape, x, Activation::kCELU, 1.0f);
  EXPECT_NEAR(tape.value(celu)[0], std::exp(-2.0) - 1.0, 1e-6);
  EXPECT_FLOAT_EQ(tape.value(celu)[2], 3.0f);
}

TEST(Activations, ExpClampPreventsOverflow) {
  Tape tape;
  const NodeId x = tape.input({100.0f});
  const auto y = apply_activation(tape, x, Activation::kExp);
  EXPECT_TRUE(std::isfinite(tape.value(y)[0]));
}

class ActivationGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradCheck, MatchesFiniteDifferences) {
  // Avoid the ReLU/LeakyReLU kink at 0 by sampling away from it; keep
  // magnitudes modest so float32 forward noise stays below the FD step.
  const std::vector<float> x0{-2.3f, -0.7f, 0.9f, 1.6f, 2.2f};
  const std::vector<float> w{1.0f, -1.0f, 2.0f, 0.5f, 1.5f};
  const Activation act = GetParam();
  auto f = [&](const std::vector<float>& x) {
    Tape t;
    return static_cast<double>(
        t.value(weighted_sum(t, apply_activation(t, t.input(x), act, 1.0f), w))[0]);
  };
  Tape tape;
  const NodeId x = tape.input(x0);
  tape.backward(weighted_sum(tape, apply_activation(tape, x, act, 1.0f), w));
  const auto r = grad_check(f, x0, tape.grad(x), 1e-2, 5e-3, 2e-2);
  EXPECT_TRUE(r.ok) << activation_name(act) << " max_abs_err=" << r.max_abs_err;
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGradCheck,
                         ::testing::Values(Activation::kReLU, Activation::kSigmoid,
                                           Activation::kLeakyReLU, Activation::kExp,
                                           Activation::kCELU));

// ---------------------------------------------------------------------------
// weighted_sum / combine
// ---------------------------------------------------------------------------

TEST(WeightedSum, PlainSumWithEmptyWeights) {
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f, 3.5f});
  EXPECT_FLOAT_EQ(tape.value(weighted_sum(tape, x))[0], 6.5f);
}

TEST(WeightedSum, AcceptsTemporaryWeights) {
  // Regression guard: the weight vector must be copied into the closure.
  Tape tape;
  const NodeId x = tape.input({2.0f, 4.0f});
  NodeId y;
  {
    std::vector<float> w{1.0f, 0.25f};
    y = weighted_sum(tape, x, w);
    w.assign(2, 999.0f);  // mutate after the call
  }
  tape.backward(y);
  EXPECT_FLOAT_EQ(tape.value(y)[0], 3.0f);
  EXPECT_DOUBLE_EQ(tape.grad(x)[0], 1.0);
  EXPECT_DOUBLE_EQ(tape.grad(x)[1], 0.25);
}

TEST(Combine, LinearCombinationOfScalars) {
  Tape tape;
  const NodeId a = tape.input({2.0f});
  const NodeId b = tape.input({3.0f});
  const NodeId y = combine(tape, {a, b}, {10.0f, 0.5f});
  EXPECT_FLOAT_EQ(tape.value(y)[0], 21.5f);
  tape.backward(y);
  EXPECT_DOUBLE_EQ(tape.grad(a)[0], 10.0);
  EXPECT_DOUBLE_EQ(tape.grad(b)[0], 0.5);
}

TEST(Combine, RejectsNonScalar) {
  Tape tape;
  const NodeId a = tape.input({2.0f, 1.0f});
  EXPECT_THROW(combine(tape, {a}, {1.0f}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Composite graph: the full DGR-shaped forward
// ---------------------------------------------------------------------------

TEST(CompositeGraph, DgrShapedGradCheck) {
  // softmax groups -> gather_mul -> spmv -> sub_const -> sigmoid -> sums.
  util::Rng rng(11);
  const std::vector<std::int32_t> p_groups{0, 2, 4, 6};
  const std::vector<std::int32_t> q_groups{0, 2, 3};
  const std::vector<std::int32_t> path_tree{0, 0, 1, 1, 2, 2};
  // A 4-edge incidence over 6 paths:
  //   edge0 <- {x0 (1), x2 (1)}, edge1 <- {x1 (1), x3 (1.5)},
  //   edge2 <- {x4 (1)},         edge3 <- {x5 (1), x0 (0.5)}.
  std::vector<std::uint32_t> fwd_off{0, 2, 4, 5, 7};
  std::vector<std::int32_t> fwd_cols{0, 2, 1, 3, 4, 5, 0};
  std::vector<float> fwd_w{1.0f, 1.0f, 1.0f, 1.5f, 1.0f, 1.0f, 0.5f};
  std::vector<std::uint32_t> bwd_off{0, 2, 3, 4, 5, 6, 7};
  std::vector<std::int32_t> bwd_cols{0, 3, 1, 0, 1, 2, 3};
  std::vector<float> bwd_w{1.0f, 0.5f, 1.0f, 1.0f, 1.5f, 1.0f, 1.0f};
  const SparseIncidence inc{&fwd_off, &fwd_cols, &fwd_w, &bwd_off, &bwd_cols, &bwd_w};
  const std::vector<float> cap{1.0f, 0.5f, 2.0f, 1.0f};
  const std::vector<float> wl{3.0f, 4.0f, 2.0f, 2.0f, 5.0f, 6.0f};

  auto forward = [&](const std::vector<float>& params, Tape& tape, NodeId* pn, NodeId* qn) {
    const std::vector<float> pw(params.begin(), params.begin() + 6);
    const std::vector<float> qw(params.begin() + 6, params.end());
    *pn = tape.input(pw);
    *qn = tape.input(qw);
    const NodeId p = segment_softmax(tape, *pn, p_groups, 0.8f);
    const NodeId q = segment_softmax(tape, *qn, q_groups, 0.8f);
    const NodeId eff = gather_mul(tape, q, path_tree, p);
    const NodeId d = spmv(tape, eff, inc);
    const NodeId slack = sub_const(tape, d, cap);
    const NodeId over = apply_activation(tape, slack, Activation::kSigmoid);
    const NodeId o = weighted_sum(tape, over);
    const NodeId w = weighted_sum(tape, eff, wl);
    return combine(tape, {o, w}, {500.0f, 0.5f});
  };

  std::vector<float> params = random_vec(rng, 9, 0.5f);
  Tape tape;
  NodeId pn, qn;
  tape.backward(forward(params, tape, &pn, &qn));
  std::vector<double> grad(9);
  std::copy(tape.grad(pn).begin(), tape.grad(pn).end(), grad.begin());
  std::copy(tape.grad(qn).begin(), tape.grad(qn).end(), grad.begin() + 6);

  auto f = [&](const std::vector<float>& x) {
    Tape t;
    NodeId a, b;
    return static_cast<double>(t.value(forward(x, t, &a, &b))[0]);
  };
  // Larger FD step: the forward runs in float32 and the 500x overflow weight
  // amplifies rounding noise.
  const auto r = grad_check(f, params, grad, 1e-2, 2e-2, 3e-2);
  EXPECT_TRUE(r.ok) << "max_abs_err=" << r.max_abs_err << " rel=" << r.max_rel_err;
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

TEST(Adam, MinimisesQuadratic) {
  // f(x) = sum (x - target)^2, gradient 2(x - target).
  const std::vector<double> target{3.0, -1.0, 0.5};
  std::vector<float> x{0.0f, 0.0f, 0.0f};
  Adam adam(3, {0.1, 0.9, 0.999, 1e-8});
  for (int it = 0; it < 500; ++it) {
    std::vector<double> g(3);
    for (std::size_t i = 0; i < 3; ++i) g[i] = 2.0 * (x[i] - target[i]);
    adam.step(x, g);
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], target[i], 1e-2);
  EXPECT_EQ(adam.iteration(), 500);
}

TEST(Adam, StepSizeBoundedByLearningRate) {
  std::vector<float> x{0.0f};
  Adam adam(1, {0.3, 0.9, 0.999, 1e-8});
  adam.step(x, {1000.0});
  // Adam's first step magnitude is ~lr regardless of gradient scale.
  EXPECT_NEAR(std::abs(x[0]), 0.3, 0.05);
}

TEST(Adam, RejectsSizeMismatch) {
  std::vector<float> x{0.0f, 1.0f};
  Adam adam(2);
  std::vector<double> g{1.0};
  EXPECT_THROW(adam.step(x, g), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// grad_check self-test
// ---------------------------------------------------------------------------

TEST(GradCheck, AcceptsCorrectAndRejectsWrongGradients) {
  auto f = [](const std::vector<float>& x) {
    return static_cast<double>(x[0]) * x[0] + 3.0 * x[1];
  };
  const std::vector<float> x0{2.0f, 1.0f};
  const std::vector<double> good{4.0, 3.0};
  const std::vector<double> bad{4.5, 3.0};
  EXPECT_TRUE(grad_check(f, x0, good).ok);
  EXPECT_FALSE(grad_check(f, x0, bad).ok);
}


TEST(SegmentSoftmax, EmptyGroupIsSkipped) {
  Tape tape;
  const NodeId x = tape.input({1.0f, 2.0f});
  // Middle group [1,1) is empty; forward and backward must not touch it.
  const std::vector<std::int32_t> offsets{0, 1, 1, 2};
  const NodeId y = segment_softmax(tape, x, offsets, 1.0f);
  EXPECT_FLOAT_EQ(tape.value(y)[0], 1.0f);
  EXPECT_FLOAT_EQ(tape.value(y)[1], 1.0f);
  tape.backward(weighted_sum(tape, y));
  EXPECT_DOUBLE_EQ(tape.grad(x)[0], 0.0);  // softmax of singleton: flat
}

// ---------------------------------------------------------------------------
// Fused kernels: fused_softmax_demand + fused_overflow_cost
// ---------------------------------------------------------------------------

/// 6 paths in 3 subnet groups, 3 trees in 2 net groups, 4 edges — the same
/// incidence as the CompositeGraph test, plus the tree-major path ranges the
/// fused backward needs.
struct FusedFixture {
  std::vector<std::int32_t> p_groups{0, 2, 4, 6};
  std::vector<std::int32_t> q_groups{0, 2, 3};
  std::vector<std::int32_t> path_tree{0, 0, 1, 1, 2, 2};
  std::vector<std::int32_t> tree_paths{0, 2, 4, 6};
  std::vector<std::uint32_t> fwd_off{0, 2, 4, 5, 7};
  std::vector<std::int32_t> fwd_cols{0, 2, 1, 3, 4, 5, 0};
  std::vector<float> fwd_w{1.0f, 1.0f, 1.0f, 1.5f, 1.0f, 1.0f, 0.5f};
  std::vector<std::uint32_t> bwd_off{0, 2, 3, 4, 5, 6, 7};
  std::vector<std::int32_t> bwd_cols{0, 3, 1, 0, 1, 2, 3};
  std::vector<float> bwd_w{1.0f, 0.5f, 1.0f, 1.0f, 1.5f, 1.0f, 1.0f};
  std::vector<float> wl{0.3f, 0.4f, 0.2f, 0.2f, 0.5f, 0.6f};
  std::vector<float> wd{1.0f, -0.5f, 2.0f, 0.8f};

  SparseIncidence inc() const {
    return SparseIncidence{&fwd_off, &fwd_cols, &fwd_w, &bwd_off, &bwd_cols, &bwd_w};
  }

  /// Objective over the fused chain: Σ wd·demand + Σ wl·eff.
  NodeId fused_objective(Tape& tape, const std::vector<float>& xp,
                         const std::vector<float>& xq, float temperature,
                         const std::vector<float>* noise_p = nullptr,
                         const std::vector<float>* noise_q = nullptr,
                         FusedSelectionDemand* nodes = nullptr, NodeId* pl = nullptr,
                         NodeId* tl = nullptr) const {
    const NodeId a = tape.input(xp);
    const NodeId b = tape.input(xq);
    if (pl != nullptr) *pl = a;
    if (tl != nullptr) *tl = b;
    const FusedSelectionDemand sel =
        fused_softmax_demand(tape, a, b, p_groups, q_groups, path_tree, tree_paths,
                             inc(), temperature, noise_p, noise_q);
    if (nodes != nullptr) *nodes = sel;
    return combine(tape, {weighted_sum(tape, sel.demand, wd), weighted_sum(tape, sel.eff, wl)},
                   {1.0f, 1.0f});
  }
};

TEST(FusedSoftmaxDemand, MatchesUnfusedComposition) {
  FusedFixture fx;
  util::Rng rng(17);
  const std::vector<float> xp = random_vec(rng, 6);
  const std::vector<float> xq = random_vec(rng, 3);
  const std::vector<float> noise_p = random_vec(rng, 6, 0.3f);
  const std::vector<float> noise_q = random_vec(rng, 3, 0.3f);

  Tape fused_tape;
  FusedSelectionDemand sel;
  NodeId fpl, ftl;
  const NodeId fused_cost = fx.fused_objective(fused_tape, xp, xq, 0.8f, &noise_p,
                                               &noise_q, &sel, &fpl, &ftl);
  fused_tape.backward(fused_cost);

  Tape ref;
  const NodeId pl = ref.input(xp);
  const NodeId tl = ref.input(xq);
  const NodeId p = segment_softmax(ref, pl, fx.p_groups, 0.8f, &noise_p);
  const NodeId q = segment_softmax(ref, tl, fx.q_groups, 0.8f, &noise_q);
  const NodeId eff = gather_mul(ref, q, fx.path_tree, p);
  const NodeId demand = spmv(ref, eff, fx.inc());
  ref.backward(combine(ref, {weighted_sum(ref, demand, fx.wd), weighted_sum(ref, eff, fx.wl)},
                       {1.0f, 1.0f}));

  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(fused_tape.value(sel.p)[i], ref.value(p)[i]) << i;
    EXPECT_FLOAT_EQ(fused_tape.value(sel.eff)[i], ref.value(eff)[i]) << i;
  }
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_FLOAT_EQ(fused_tape.value(sel.q)[t], ref.value(q)[t]) << t;
  }
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_FLOAT_EQ(fused_tape.value(sel.demand)[e], ref.value(demand)[e]) << e;
  }
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(fused_tape.grad(fpl)[i], ref.grad(pl)[i],
                1e-12 + 1e-9 * std::abs(ref.grad(pl)[i]))
        << i;
  }
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_NEAR(fused_tape.grad(ftl)[t], ref.grad(tl)[t],
                1e-12 + 1e-9 * std::abs(ref.grad(tl)[t]))
        << t;
  }
}

TEST(FusedSoftmaxDemand, GradCheckWithGumbelNoise) {
  FusedFixture fx;
  util::Rng rng(23);
  const std::vector<float> xp = random_vec(rng, 6);
  const std::vector<float> xq = random_vec(rng, 3);
  const std::vector<float> noise_p = random_vec(rng, 6, 0.4f);
  const std::vector<float> noise_q = random_vec(rng, 3, 0.4f);

  auto split = [&](const std::vector<float>& params, std::vector<float>* a,
                   std::vector<float>* b) {
    a->assign(params.begin(), params.begin() + 6);
    b->assign(params.begin() + 6, params.end());
  };
  auto f = [&](const std::vector<float>& params) {
    std::vector<float> a, b;
    split(params, &a, &b);
    Tape t;
    return static_cast<double>(
        t.value(fx.fused_objective(t, a, b, 0.7f, &noise_p, &noise_q))[0]);
  };

  std::vector<float> params(xp);
  params.insert(params.end(), xq.begin(), xq.end());
  Tape tape;
  NodeId pl, tl;
  tape.backward(fx.fused_objective(tape, xp, xq, 0.7f, &noise_p, &noise_q, nullptr,
                                   &pl, &tl));
  std::vector<double> grad(9);
  std::copy(tape.grad(pl).begin(), tape.grad(pl).end(), grad.begin());
  std::copy(tape.grad(tl).begin(), tape.grad(tl).end(), grad.begin() + 6);
  const auto r = grad_check(f, params, grad);
  EXPECT_TRUE(r.ok) << "max_abs_err=" << r.max_abs_err << " at " << r.worst_index;
}

class FusedSoftmaxDemandTemperature : public ::testing::TestWithParam<float> {};

TEST_P(FusedSoftmaxDemandTemperature, GradCheckAtExtremeTemperatures) {
  // τ=0.01 drives the softmaxes to saturation (gradients underflow to ~0 and
  // finite differences agree); τ=10 flattens them. Both must gradcheck.
  FusedFixture fx;
  const float tau = GetParam();
  // Well-separated logits so the τ→0 limit is a stable one-hot.
  const std::vector<float> xp{0.9f, -0.4f, 0.1f, 1.2f, -0.8f, 0.5f};
  const std::vector<float> xq{0.6f, -0.7f, 0.2f};
  auto f = [&](const std::vector<float>& params) {
    const std::vector<float> a(params.begin(), params.begin() + 6);
    const std::vector<float> b(params.begin() + 6, params.end());
    Tape t;
    return static_cast<double>(t.value(fx.fused_objective(t, a, b, tau))[0]);
  };
  std::vector<float> params(xp);
  params.insert(params.end(), xq.begin(), xq.end());
  Tape tape;
  NodeId pl, tl;
  tape.backward(fx.fused_objective(tape, xp, xq, tau, nullptr, nullptr, nullptr, &pl, &tl));
  std::vector<double> grad(9);
  std::copy(tape.grad(pl).begin(), tape.grad(pl).end(), grad.begin());
  std::copy(tape.grad(tl).begin(), tape.grad(tl).end(), grad.begin() + 6);
  const auto r = grad_check(f, params, grad);
  EXPECT_TRUE(r.ok) << "tau=" << tau << " max_abs_err=" << r.max_abs_err;
}

INSTANTIATE_TEST_SUITE_P(Extremes, FusedSoftmaxDemandTemperature,
                         ::testing::Values(0.01f, 10.0f));

TEST(FusedSoftmaxDemand, DegenerateSegmentsGradCheck) {
  // Single-candidate subnet groups (softmax == 1), an empty subnet group,
  // and a tree candidate with zero paths. 3 paths / 3 subnet groups (middle
  // empty), 2 trees (tree 1 empty), 1 net group over both trees, 2 edges.
  const std::vector<std::int32_t> p_groups{0, 1, 1, 3};
  const std::vector<std::int32_t> q_groups{0, 2};
  const std::vector<std::int32_t> path_tree{0, 0, 0};
  const std::vector<std::int32_t> tree_paths{0, 3, 3};
  const std::vector<std::uint32_t> fwd_off{0, 2, 3};
  const std::vector<std::int32_t> fwd_cols{0, 1, 2};
  const std::vector<float> fwd_w{1.0f, 0.5f, 2.0f};
  const std::vector<std::uint32_t> bwd_off{0, 1, 2, 3};
  const std::vector<std::int32_t> bwd_cols{0, 0, 1};
  const std::vector<float> bwd_w{1.0f, 0.5f, 2.0f};
  const SparseIncidence inc{&fwd_off, &fwd_cols, &fwd_w, &bwd_off, &bwd_cols, &bwd_w};
  const std::vector<float> wd{1.5f, -0.7f};

  auto objective = [&](Tape& t, const std::vector<float>& a, const std::vector<float>& b,
                       NodeId* pl, NodeId* tl) {
    *pl = t.input(a);
    *tl = t.input(b);
    const FusedSelectionDemand sel = fused_softmax_demand(
        t, *pl, *tl, p_groups, q_groups, path_tree, tree_paths, inc, 0.9f);
    return weighted_sum(t, sel.demand, wd);
  };
  const std::vector<float> xp{0.4f, -0.2f, 0.7f};
  const std::vector<float> xq{0.1f, -0.5f};
  auto f = [&](const std::vector<float>& params) {
    const std::vector<float> a(params.begin(), params.begin() + 3);
    const std::vector<float> b(params.begin() + 3, params.end());
    Tape t;
    NodeId pl, tl;
    return static_cast<double>(t.value(objective(t, a, b, &pl, &tl))[0]);
  };
  std::vector<float> params(xp);
  params.insert(params.end(), xq.begin(), xq.end());
  Tape tape;
  NodeId pl, tl;
  tape.backward(objective(tape, xp, xq, &pl, &tl));
  std::vector<double> grad(5);
  std::copy(tape.grad(pl).begin(), tape.grad(pl).end(), grad.begin());
  std::copy(tape.grad(tl).begin(), tape.grad(tl).end(), grad.begin() + 3);
  const auto r = grad_check(f, params, grad);
  EXPECT_TRUE(r.ok) << "max_abs_err=" << r.max_abs_err << " at " << r.worst_index;
  // The single-candidate group is a constant 1 under softmax: zero gradient.
  EXPECT_NEAR(tape.grad(pl)[0], 0.0, 1e-12);
}

TEST(FusedSoftmaxDemand, RejectsBadStructure) {
  FusedFixture fx;
  Tape tape;
  const NodeId a = tape.input(std::vector<float>(6, 0.0f));
  const NodeId b = tape.input(std::vector<float>(3, 0.0f));
  EXPECT_THROW(fused_softmax_demand(tape, a, b, fx.p_groups, fx.q_groups, fx.path_tree,
                                    fx.tree_paths, fx.inc(), 0.0f),
               std::invalid_argument);
  std::vector<std::int32_t> bad_tree_paths{0, 2, 4, 5};  // does not cover paths
  EXPECT_THROW(fused_softmax_demand(tape, a, b, fx.p_groups, fx.q_groups, fx.path_tree,
                                    bad_tree_paths, fx.inc(), 1.0f),
               std::invalid_argument);
}

TEST(FusedOverflowCost, MatchesUnfusedChain) {
  util::Rng rng(29);
  const std::vector<float> x0 = random_vec(rng, 11);
  const std::vector<float> cap(11, 0.2f);
  // The unfused chain is always scalar; with the SIMD kernels active the
  // fused side evaluates exp-based activations with the vector polynomial,
  // so the comparison runs at the shared-eval tolerance instead of the
  // near-bitwise scalar one (DESIGN.md §5.4).
  const double grad_rtol = simd::active() ? 1e-6 : 1e-9;
  const double grad_atol = simd::active() ? 1e-9 : 1e-12;
  for (const Activation act : {Activation::kReLU, Activation::kSigmoid,
                               Activation::kLeakyReLU, Activation::kExp,
                               Activation::kCELU}) {
    Tape fused;
    const NodeId fx = fused.input(x0);
    // block=3 exercises the multi-block partial reduction.
    const NodeId fo = fused_overflow_cost(fused, fx, cap, act, 1.0f, /*block=*/3);
    Tape ref;
    const NodeId rx = ref.input(x0);
    const NodeId ro =
        weighted_sum(ref, apply_activation(ref, sub_const(ref, rx, cap), act, 1.0f));
    EXPECT_NEAR(fused.value(fo)[0], ref.value(ro)[0],
                1e-6 + 1e-6 * std::abs(ref.value(ro)[0]))
        << activation_name(act);
    fused.backward(fo);
    ref.backward(ro);
    for (std::size_t i = 0; i < x0.size(); ++i) {
      EXPECT_NEAR(fused.grad(fx)[i], ref.grad(rx)[i],
                  grad_atol + grad_rtol * std::abs(ref.grad(rx)[i]))
          << activation_name(act) << " i=" << i;
    }
  }
}

class FusedOverflowGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(FusedOverflowGradCheck, MatchesFiniteDifferences) {
  // Slacks kept away from the ReLU/LeakyReLU kink at 0 (|x - c| >= 0.25) and
  // small enough that float rounding of the Exp sum stays below the finite-
  // difference tolerance on every coordinate.
  const std::vector<float> x0{-1.1f, -0.7f, 0.3f, 0.55f, 0.8f, -0.9f, 0.45f};
  const std::vector<float> cap{0.05f, 0.05f, 0.05f, 0.05f, 0.05f, 0.05f, 0.05f};
  const Activation act = GetParam();
  auto f = [&](const std::vector<float>& x) {
    Tape t;
    return static_cast<double>(
        t.value(fused_overflow_cost(t, t.input(x), cap, act, 1.0f, /*block=*/3))[0]);
  };
  Tape tape;
  const NodeId x = tape.input(x0);
  tape.backward(fused_overflow_cost(tape, x, cap, act, 1.0f, /*block=*/3));
  const auto r = grad_check(f, x0, tape.grad(x));
  EXPECT_TRUE(r.ok) << activation_name(act) << " max_abs_err=" << r.max_abs_err;
}

INSTANTIATE_TEST_SUITE_P(All, FusedOverflowGradCheck,
                         ::testing::Values(Activation::kReLU, Activation::kSigmoid,
                                           Activation::kLeakyReLU, Activation::kExp,
                                           Activation::kCELU));

TEST(FusedOverflowCost, EmptyInputIsZero) {
  Tape tape;
  const std::vector<float> cap;  // must outlive the tape (captured by reference)
  const NodeId x = tape.input(std::vector<float>{});
  const NodeId y = fused_overflow_cost(tape, x, cap, Activation::kSigmoid);
  EXPECT_FLOAT_EQ(tape.value(y)[0], 0.0f);
}

TEST(Spmv, EmptyRowsProduceZero) {
  const std::vector<std::uint32_t> fwd_off{0, 0, 1, 1};
  const std::vector<std::int32_t> fwd_cols{0};
  const std::vector<float> fwd_w{2.0f};
  const std::vector<std::uint32_t> bwd_off{0, 1};
  const std::vector<std::int32_t> bwd_cols{1};
  const std::vector<float> bwd_w{2.0f};
  const SparseIncidence inc{&fwd_off, &fwd_cols, &fwd_w, &bwd_off, &bwd_cols, &bwd_w};
  Tape tape;
  const NodeId x = tape.input({3.0f});
  const NodeId y = spmv(tape, x, inc);
  EXPECT_FLOAT_EQ(tape.value(y)[0], 0.0f);
  EXPECT_FLOAT_EQ(tape.value(y)[1], 6.0f);
  EXPECT_FLOAT_EQ(tape.value(y)[2], 0.0f);
  tape.backward(weighted_sum(tape, y));
  EXPECT_DOUBLE_EQ(tape.grad(x)[0], 2.0);
}

// ---------------------------------------------------------------------------
// Arena reuse and multi-root backward
// ---------------------------------------------------------------------------

TEST(Tape, ResetKeepsCapacityAndReproducesValues) {
  util::Rng rng(99);
  const std::vector<float> x0 = random_vec(rng, 512);
  const std::vector<std::int32_t> offsets{0, 100, 256, 400, 512};

  Tape tape;
  auto record = [&] {
    const NodeId x = tape.input(x0);
    const NodeId p = segment_softmax(tape, x, offsets, 0.7f);
    const NodeId cost = weighted_sum(tape, p);
    tape.backward(cost);
    return std::pair{std::vector<float>(tape.value(p).begin(), tape.value(p).end()),
                     std::vector<double>(tape.grad(x).begin(), tape.grad(x).end())};
  };
  const auto first = record();
  const std::size_t bytes_after_first = tape.memory_bytes();
  for (int round = 0; round < 3; ++round) {
    tape.reset();
    const auto again = record();
    EXPECT_EQ(again.first, first.first) << "round " << round;
    EXPECT_EQ(again.second, first.second) << "round " << round;
    // Re-recording an identical graph must never regrow the arenas.
    EXPECT_EQ(tape.memory_bytes(), bytes_after_first) << "round " << round;
  }
}

TEST(Tape, BackwardMultiMatchesSeparateBackwards) {
  // Two disjoint subgraphs, one reverse replay: gradients must equal what
  // two dedicated tapes produce. This is the batched-solver substrate.
  util::Rng rng(7);
  const std::vector<float> a0 = random_vec(rng, 64);
  const std::vector<float> b0 = random_vec(rng, 48);
  const std::vector<std::int32_t> offa{0, 32, 64};
  const std::vector<std::int32_t> offb{0, 48};

  Tape shared;
  const NodeId ax = shared.input(a0);
  const NodeId ac = weighted_sum(shared, segment_softmax(shared, ax, offa, 1.3f));
  const NodeId bx = shared.input(b0);
  const NodeId bc = weighted_sum(shared, segment_softmax(shared, bx, offb, 0.9f));
  const NodeId roots[] = {ac, bc};
  shared.backward_multi(roots);

  Tape solo_a;
  const NodeId sax = solo_a.input(a0);
  solo_a.backward(weighted_sum(solo_a, segment_softmax(solo_a, sax, offa, 1.3f)));
  Tape solo_b;
  const NodeId sbx = solo_b.input(b0);
  solo_b.backward(weighted_sum(solo_b, segment_softmax(solo_b, sbx, offb, 0.9f)));

  for (std::size_t i = 0; i < a0.size(); ++i) {
    EXPECT_EQ(shared.grad(ax)[i], solo_a.grad(sax)[i]) << i;
  }
  for (std::size_t i = 0; i < b0.size(); ++i) {
    EXPECT_EQ(shared.grad(bx)[i], solo_b.grad(sbx)[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// SIMD-vs-scalar equivalence (compiled only under DGR_SIMD; self-skips
// otherwise so the same test source runs in both preset matrix legs)
// ---------------------------------------------------------------------------

class SimdGuard {
 public:
  explicit SimdGuard(bool on) : prev_(simd::enabled()) { simd::set_enabled(on); }
  ~SimdGuard() { simd::set_enabled(prev_); }

 private:
  bool prev_;
};

TEST(Simd, SoftmaxMatchesScalarWithinTolerance) {
  if (!simd::compiled_in()) GTEST_SKIP() << "built without DGR_SIMD";
  util::Rng rng(321);
  const std::vector<float> x0 = random_vec(rng, 4096, 2.0f);
  std::vector<std::int32_t> offsets;
  for (std::int32_t i = 0; i <= 4096; i += 64) offsets.push_back(i);

  auto run = [&](bool simd_on) {
    SimdGuard guard(simd_on);
    Tape tape;
    const NodeId x = tape.input(x0);
    const NodeId p = segment_softmax(tape, x, offsets, 0.8f);
    tape.backward(weighted_sum(tape, p));
    return std::pair{std::vector<float>(tape.value(p).begin(), tape.value(p).end()),
                     std::vector<double>(tape.grad(x).begin(), tape.grad(x).end())};
  };
  const auto scalar = run(false);
  const auto vec = run(true);
  // The vector exp polynomial differs from libm by a few ulp; the contract
  // is tolerance, not bitwise equality (DESIGN.md §5.4).
  for (std::size_t i = 0; i < scalar.first.size(); ++i) {
    EXPECT_NEAR(vec.first[i], scalar.first[i], 1e-6f + 1e-5f * std::abs(scalar.first[i]))
        << i;
  }
  for (std::size_t i = 0; i < scalar.second.size(); ++i) {
    EXPECT_NEAR(vec.second[i], scalar.second[i],
                1e-7 + 1e-5 * std::abs(scalar.second[i]))
        << i;
  }
}

TEST(Simd, FusedOverflowMatchesScalarWithinTolerance) {
  if (!simd::compiled_in()) GTEST_SKIP() << "built without DGR_SIMD";
  util::Rng rng(654);
  const std::vector<float> x0 = random_vec(rng, 2048, 1.5f);
  std::vector<float> cap(2048);
  for (float& c : cap) c = std::abs(static_cast<float>(rng.normal()));

  for (const Activation act : {Activation::kReLU, Activation::kSigmoid,
                               Activation::kLeakyReLU, Activation::kExp,
                               Activation::kCELU}) {
    auto run = [&](bool simd_on) {
      SimdGuard guard(simd_on);
      Tape tape;
      const NodeId x = tape.input(x0);
      const NodeId y = fused_overflow_cost(tape, x, cap, act, 1.0f);
      tape.backward(y);
      return std::pair{tape.value(y)[0],
                       std::vector<double>(tape.grad(x).begin(), tape.grad(x).end())};
    };
    const auto scalar = run(false);
    const auto vec = run(true);
    EXPECT_NEAR(vec.first, scalar.first,
                1e-5f + 1e-5f * std::abs(scalar.first))
        << activation_name(act);
    for (std::size_t i = 0; i < scalar.second.size(); ++i) {
      EXPECT_NEAR(vec.second[i], scalar.second[i],
                  1e-7 + 1e-5 * std::abs(scalar.second[i]))
          << activation_name(act) << " " << i;
    }
  }
}

TEST(Simd, GradCheckPassesWithSimdEnabled) {
  if (!simd::compiled_in()) GTEST_SKIP() << "built without DGR_SIMD";
  SimdGuard guard(true);
  util::Rng rng(111);
  const std::vector<float> x0 = random_vec(rng, 96);
  const std::vector<std::int32_t> offsets{0, 24, 48, 96};
  auto f = [&](const std::vector<float>& x) {
    SimdGuard inner(true);
    Tape tape;
    const NodeId xs = tape.input(x);
    const NodeId p = segment_softmax(tape, xs, offsets, 1.0f);
    return static_cast<double>(tape.value(weighted_sum(tape, p))[0]);
  };
  Tape tape;
  const NodeId x = tape.input(x0);
  tape.backward(weighted_sum(tape, segment_softmax(tape, x, offsets, 1.0f)));
  const auto r = grad_check(f, x0, tape.grad(x), 1e-3, 2e-4, 1e-2);
  EXPECT_TRUE(r.ok) << "max_abs_err=" << r.max_abs_err
                    << " max_rel_err=" << r.max_rel_err;
}

}  // namespace
}  // namespace dgr::ad
