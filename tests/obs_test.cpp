// Observability subsystem tests (DESIGN.md §8): the JSON document model,
// span tracing across pool workers, metric semantics (counter/gauge/
// histogram bucket edges), snapshot determinism across worker counts, the
// convergence telemetry's no-allocation contract, the dgr-bench-v1 schema
// validator, and — the integration lock-down — a full Pipeline run with
// tracing enabled producing a well-formed Chrome trace with nested stage
// spans and per-iteration solver counters, bitwise identical to the
// untraced run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "design/generator.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace dgr::obs {
namespace {

/// Restores the default worker count and disables tracing even when a test
/// fails mid-way, so suites stay independent.
struct ObsTestGuard {
  ~ObsTestGuard() {
    set_tracing(false);
    util::set_worker_count(0);
  }
};

// ---------------------------------------------------------------------------
// json::Value
// ---------------------------------------------------------------------------

TEST(ObsJson, DumpPreservesInsertionOrder) {
  json::Value doc = json::Value::object();
  doc["zulu"] = 1;
  doc["alpha"] = 2;
  EXPECT_EQ(doc.dump(), "{\"zulu\":1,\"alpha\":2}");
}

TEST(ObsJson, IntegersPrintWithoutFraction) {
  EXPECT_EQ(json::format_number(3.0), "3");
  EXPECT_EQ(json::format_number(-17.0), "-17");
  EXPECT_EQ(json::format_number(0.0), "0");
}

TEST(ObsJson, NonIntegersRoundTrip) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-20, 6.02e23, -2.5}) {
    const std::string s = json::format_number(v);
    json::Value parsed;
    ASSERT_TRUE(json::Value::parse(s, &parsed)) << s;
    EXPECT_EQ(parsed.as_number(), v) << s;
  }
}

TEST(ObsJson, ParseRoundTripsDump) {
  json::Value doc = json::Value::object();
  doc["s"] = "quote \" backslash \\ newline \n";
  doc["n"] = 1.25;
  doc["b"] = true;
  json::Value& arr = doc["a"];
  arr = json::Value::array();
  arr.push_back(1);
  arr.push_back(json::Value());  // null
  const std::string text = doc.dump(2);
  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::Value::parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.dump(2), text);
}

TEST(ObsJson, ParseRejectsMalformed) {
  json::Value out;
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"}) {
    EXPECT_FALSE(json::Value::parse(bad, &out)) << bad;
  }
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledSitesEmitNothing) {
  ObsTestGuard guard;
  reset_trace();
  ASSERT_FALSE(tracing_enabled());
  { DGR_TRACE_SCOPE("test.disabled"); }
  DGR_TRACE_INSTANT("test.disabled_instant");
  DGR_TRACE_COUNTER("test.disabled_counter", 1.0);
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(ObsTrace, SpansNestAcrossPoolWorkers) {
  if (!compiled_in()) GTEST_SKIP() << "built with DGR_OBS=OFF";
  ObsTestGuard guard;
  util::set_worker_count(4);

  // Each item burns real work so workers that the scheduler runs mid-job
  // claim whole chunks of it. The untraced warm-up spawns the pool threads;
  // its job is submitted with tracing off, so even workers that wake for it
  // late (inside the traced window below) emit no "pool.job" span.
  std::atomic<std::int64_t> sink{0};
  const auto body = [&](std::size_t i) {
    DGR_TRACE_SCOPE("test.inner");
    double acc = static_cast<double>(i);
    for (int k = 0; k < 4000; ++k) acc = acc * 1.0000001 + 1.0;
    sink.fetch_add(static_cast<std::int64_t>(acc), std::memory_order_relaxed);
  };
  util::ParallelRuntime::for_each(0, 256, body, /*grain=*/8);

  reset_trace();
  set_tracing(true);
  {
    DGR_TRACE_SCOPE("test.outer");
    util::ParallelRuntime::for_each(0, 256, body, /*grain=*/8);
  }
  set_tracing(false);

  json::Value doc;
  ASSERT_TRUE(json::Value::parse(chrome_trace_json(), &doc));
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Each event keyed by name; spans must nest: every "test.inner" interval
  // and every per-participant "pool.job" interval lies inside the single
  // "test.outer" interval (a traced submission drains all participants
  // before returning, so their spans close before the outer scope does).
  double outer_lo = 0.0, outer_hi = -1.0;
  std::size_t inner = 0, pool_jobs = 0;
  std::set<double> tids;
  for (const json::Value& ev : events->items()) {
    const json::Value* name = ev.find("name");
    ASSERT_NE(name, nullptr);
    if (name->as_string() == "test.outer") {
      outer_lo = ev.find("ts")->as_number();
      outer_hi = outer_lo + ev.find("dur")->as_number();
    }
  }
  ASSERT_GE(outer_hi, outer_lo);
  for (const json::Value& ev : events->items()) {
    const std::string& name = ev.find("name")->as_string();
    if (name == "test.inner") {
      ++inner;
      const double lo = ev.find("ts")->as_number();
      const double hi = lo + ev.find("dur")->as_number();
      EXPECT_GE(lo, outer_lo);
      EXPECT_LE(hi, outer_hi);
    } else if (name == "pool.job") {
      ++pool_jobs;
      const double lo = ev.find("ts")->as_number();
      const double hi = lo + ev.find("dur")->as_number();
      EXPECT_GE(lo, outer_lo);
      EXPECT_LE(hi, outer_hi);
      tids.insert(ev.find("tid")->as_number());
    }
  }
  // 256 items / grain 8 = 32 chunks; each claimed chunk runs the lambda per
  // item, one span per item, whichever participant claimed it.
  EXPECT_EQ(inner, 256u);
  // All 4 participants (caller + 3 pool threads) ran the traced job body —
  // the pool drains every enrolled worker before a traced submission
  // returns — and their spans come from distinct threads, proving the
  // per-thread ring buffers merge into one coherent timeline. (Which
  // participants claim item chunks is the scheduler's choice and is
  // deliberately not asserted.)
  EXPECT_EQ(pool_jobs, 4u);
  EXPECT_GT(tids.size(), 1u) << "expected pool.job spans on more than one thread";
}

TEST(ObsTrace, CounterAndInstantEventsCarryPayload) {
  if (!compiled_in()) GTEST_SKIP() << "built with DGR_OBS=OFF";
  ObsTestGuard guard;
  reset_trace();
  set_tracing(true);
  DGR_TRACE_COUNTER("test.counter", 2.5);
  DGR_TRACE_INSTANT("test.instant");
  set_tracing(false);

  json::Value doc;
  ASSERT_TRUE(json::Value::parse(chrome_trace_json(), &doc));
  bool saw_counter = false, saw_instant = false;
  for (const json::Value& ev : doc.find("traceEvents")->items()) {
    const std::string& name = ev.find("name")->as_string();
    if (name == "test.counter") {
      saw_counter = true;
      EXPECT_EQ(ev.find("ph")->as_string(), "C");
      EXPECT_EQ(ev.find("args")->find("value")->as_number(), 2.5);
    } else if (name == "test.instant") {
      saw_instant = true;
      EXPECT_EQ(ev.find("ph")->as_string(), "i");
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);
}

TEST(ObsTrace, InternReturnsStablePointers) {
  const char* a = intern("test.site-a");
  const char* b = intern(std::string("test.site-") + "a");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "test.site-a");
}

// ---------------------------------------------------------------------------
// Trace contexts (request-scoped correlation, DESIGN.md §8)
// ---------------------------------------------------------------------------

/// Maps every complete span name to its args.req (empty string when the
/// span carried no request context).
std::map<std::string, std::string> spans_by_req(const std::string& trace_text) {
  json::Value doc;
  EXPECT_TRUE(json::Value::parse(trace_text, &doc));
  std::map<std::string, std::string> out;
  for (const json::Value& ev : doc.find("traceEvents")->items()) {
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const json::Value* args = ev.find("args");
    const json::Value* req = args != nullptr ? args->find("req") : nullptr;
    out[ev.find("name")->as_string()] =
        req != nullptr ? req->as_string() : std::string();
  }
  return out;
}

TEST(ObsTraceContext, ScopeStampsSpansAndRestoresOnExit) {
  if (!compiled_in()) GTEST_SKIP() << "built with DGR_OBS=OFF";
  ObsTestGuard guard;
  EXPECT_FALSE(current_trace_context().active());

  reset_trace();
  set_tracing(true);
  {
    TraceContextScope ctx("req-1", "route", "sess-1");
    EXPECT_TRUE(current_trace_context().active());
    { DGR_TRACE_SCOPE("test.ctx.outer"); }
    {
      TraceContextScope nested("req-2", "", "");
      { DGR_TRACE_SCOPE("test.ctx.nested"); }
    }
    // Leaving the nested scope restores the outer request's context.
    { DGR_TRACE_SCOPE("test.ctx.restored"); }
  }
  EXPECT_FALSE(current_trace_context().active());
  { DGR_TRACE_SCOPE("test.ctx.outside"); }
  set_tracing(false);

  const std::map<std::string, std::string> by_req = spans_by_req(chrome_trace_json());
  EXPECT_EQ(by_req.at("test.ctx.outer"), "req-1");
  EXPECT_EQ(by_req.at("test.ctx.nested"), "req-2");
  EXPECT_EQ(by_req.at("test.ctx.restored"), "req-1");
  EXPECT_EQ(by_req.at("test.ctx.outside"), "");

  // op/session ride along on the stamped span.
  json::Value doc;
  ASSERT_TRUE(json::Value::parse(chrome_trace_json(), &doc));
  for (const json::Value& ev : doc.find("traceEvents")->items()) {
    if (ev.find("name")->as_string() != "test.ctx.outer") continue;
    const json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("op")->as_string(), "route");
    EXPECT_EQ(args->find("session")->as_string(), "sess-1");
  }
}

TEST(ObsTraceContext, ContextPropagatesToPoolWorkers) {
  if (!compiled_in()) GTEST_SKIP() << "built with DGR_OBS=OFF";
  ObsTestGuard guard;
  util::set_worker_count(4);

  std::atomic<std::int64_t> sink{0};
  const auto body = [&](std::size_t i) {
    DGR_TRACE_SCOPE("test.ctx.pool_inner");
    double acc = static_cast<double>(i);
    for (int k = 0; k < 4000; ++k) acc = acc * 1.0000001 + 1.0;
    sink.fetch_add(static_cast<std::int64_t>(acc), std::memory_order_relaxed);
  };
  // Untraced warm-up spawns the pool threads (see SpansNestAcrossPoolWorkers).
  util::ParallelRuntime::for_each(0, 256, body, /*grain=*/8);

  reset_trace();
  set_tracing(true);
  {
    TraceContextScope ctx("pool-req", "route", "pool-sess");
    util::ParallelRuntime::for_each(0, 256, body, /*grain=*/8);
  }
  set_tracing(false);

  // The submitter's context crosses the dispatch boundary: every pool.job
  // span — including those on pool worker threads that never saw the scope
  // directly — and every span nested inside one carries the request id.
  json::Value doc;
  ASSERT_TRUE(json::Value::parse(chrome_trace_json(), &doc));
  std::size_t pool_jobs = 0, inner = 0;
  for (const json::Value& ev : doc.find("traceEvents")->items()) {
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const std::string& name = ev.find("name")->as_string();
    if (name != "pool.job" && name != "test.ctx.pool_inner") continue;
    name == "pool.job" ? ++pool_jobs : ++inner;
    const json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr) << name;
    ASSERT_NE(args->find("req"), nullptr) << name;
    EXPECT_EQ(args->find("req")->as_string(), "pool-req") << name;
  }
  EXPECT_EQ(pool_jobs, 4u);
  EXPECT_EQ(inner, 256u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(ObsPrometheus, NameManglingTable) {
  EXPECT_EQ(prometheus_name("serve.requests.offered"), "dgr_serve_requests_offered");
  EXPECT_EQ(prometheus_name("serve.latency_ms"), "dgr_serve_latency_ms");
  EXPECT_EQ(prometheus_name("route.dgr-fallback"), "dgr_route_dgr_fallback");
  EXPECT_EQ(prometheus_name("a.b", "ns"), "ns_a_b");
  EXPECT_EQ(prometheus_name("plain", ""), "plain");
}

TEST(ObsPrometheus, RenderMatchesGoldenText) {
  Counter& c = metrics().counter("test.prom.count");
  c.reset();
  c.add(3);
  Gauge& g = metrics().gauge("test.prom.gauge");
  g.set(1.5);
  Histogram& h = metrics().histogram("test.prom.hist", {1.0, 2.0});
  h.reset();
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);  // overflow: in +Inf and _count only

  PrometheusOptions options;
  options.include_prefixes = {"test.prom."};
  EXPECT_EQ(prometheus_text(options),
            "# TYPE dgr_test_prom_count counter\n"
            "dgr_test_prom_count 3\n"
            "# TYPE dgr_test_prom_gauge gauge\n"
            "dgr_test_prom_gauge 1.5\n"
            "# TYPE dgr_test_prom_hist histogram\n"
            "dgr_test_prom_hist_bucket{le=\"1\"} 1\n"
            "dgr_test_prom_hist_bucket{le=\"2\"} 2\n"
            "dgr_test_prom_hist_bucket{le=\"+Inf\"} 3\n"
            "dgr_test_prom_hist_count 3\n");

  // exclude_prefixes carves series out after include filtering.
  options.exclude_prefixes = {"test.prom.hist", "test.prom.gauge"};
  EXPECT_EQ(prometheus_text(options),
            "# TYPE dgr_test_prom_count counter\n"
            "dgr_test_prom_count 3\n");
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterAccumulates) {
  Counter& c = metrics().counter("test.counter_accumulates");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(ObsMetrics, RegistryReturnsSameInstance) {
  Counter& a = metrics().counter("test.same_instance");
  Counter& b = metrics().counter("test.same_instance");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, HistogramBucketEdges) {
  Histogram& h = metrics().histogram("test.bucket_edges", {1.0, 2.0, 4.0});
  h.reset();
  // Bucket i counts bound[i-1] < v <= bound[i]; the last bucket is overflow.
  h.observe(0.5);   // bucket 0 (v <= 1)
  h.observe(1.0);   // bucket 0 (inclusive upper edge)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1 (inclusive upper edge)
  h.observe(2.001); // bucket 2
  h.observe(4.0);   // bucket 2
  h.observe(4.5);   // overflow bucket
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 2);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.total_count(), 7);
}

TEST(ObsMetrics, SnapshotIsSortedAndParses) {
  metrics().counter("test.zz_last").reset();
  metrics().counter("test.aa_first").reset();
  const std::string text = metrics().snapshot_json();
  json::Value doc;
  ASSERT_TRUE(json::Value::parse(text, &doc));
  const json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  std::vector<std::string> names;
  for (const auto& [name, value] : counters->members()) names.push_back(name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ObsMetrics, SnapshotDeterministicAcrossWorkerCounts) {
  ObsTestGuard guard;
  // The same deterministic parallel workload must yield byte-identical
  // snapshots at any worker count: histograms keep integer bucket counts
  // only (no order-dependent FP sum), counters are integer adds.
  auto run_workload = [] {
    metrics().reset();
    Counter& items = metrics().counter("test.det.items");
    Histogram& h = metrics().histogram("test.det.hist", {10.0, 100.0, 1000.0});
    util::ParallelRuntime::for_each(
        0, 4096,
        [&](std::size_t i) {
          items.add();
          h.observe(static_cast<double>(i % 2000));
        },
        /*grain=*/32);
    return metrics().snapshot_json();
  };

  util::set_worker_count(1);
  const std::string ref = run_workload();
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    util::set_worker_count(workers);
    EXPECT_EQ(run_workload(), ref) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// ConvergenceSeries
// ---------------------------------------------------------------------------

TEST(ObsConvergence, ReservedPushDoesNotAllocate) {
  Counter& growth = metrics().counter("obs.convergence.unreserved_growth");
  growth.reset();
  ConvergenceSeries series;
  series.reserve(64);
  for (int i = 0; i < 64; ++i) {
    series.push({i, 1.0, 0.5, 0.9, 0.1});
  }
  EXPECT_EQ(series.size(), 64u);
  EXPECT_EQ(growth.value(), 0) << "push within reserved capacity allocated";
  // The 65th sample exceeds the reservation: allowed, but counted.
  series.push({64, 1.0, 0.5, 0.9, 0.1});
  EXPECT_EQ(growth.value(), 1);
}

TEST(ObsConvergence, TruncateRewindsSamplesButKeepsRollbacks) {
  ConvergenceSeries series;
  series.reserve(8);
  for (int i = 0; i < 8; ++i) series.push({i, double(i), 0, 0, 0});
  series.rollbacks.push_back({7, 3});
  series.truncate(3);
  EXPECT_EQ(series.size(), 3u);
  ASSERT_EQ(series.rollbacks.size(), 1u);
  EXPECT_EQ(series.rollbacks[0].at_iteration, 7);
  EXPECT_EQ(series.rollbacks[0].resumed_from, 3);
}

TEST(ObsConvergence, ToJsonIsColumnar) {
  ConvergenceSeries series;
  series.reserve(2);
  series.push({0, 10.0, 1.0, 0.9, 0.5});
  series.push({1, 9.0, 0.8, 0.9, 0.4});
  const json::Value doc = series.to_json();
  ASSERT_NE(doc.find("loss"), nullptr);
  EXPECT_EQ(doc.find("loss")->size(), 2u);
  EXPECT_EQ(doc.find("loss")->items()[1].as_number(), 9.0);
  ASSERT_NE(doc.find("iteration"), nullptr);
  EXPECT_EQ(doc.find("iteration")->items()[0].as_number(), 0.0);
}

// ---------------------------------------------------------------------------
// BenchEmitter / dgr-bench-v1 schema
// ---------------------------------------------------------------------------

TEST(ObsBench, EmitterProducesValidSchema) {
  BenchEmitter bench("unit_test", "none (unit test)");
  bench.set_config("scale", 3.0);
  bench.set_config("mode", "fast");
  bench.add_row("case-a").metric("wl", 100).stage("route", 0.5).note("status", "ok");
  bench.add_row("case-b").metrics({{"wl", 120.0}, {"ovf", 3.0}});
  bench.summary("total_wl", 220.0);

  const json::Value doc = bench.to_json();
  std::string error;
  EXPECT_TRUE(validate_bench_json(doc, &error)) << error;
  EXPECT_EQ(doc.find("schema")->as_string(), BenchEmitter::kSchemaId);
  EXPECT_EQ(bench.default_path(), "BENCH_unit_test.json");

  // Round-trip through text: the validator accepts what the writer wrote.
  json::Value parsed;
  ASSERT_TRUE(json::Value::parse(doc.dump(1), &parsed));
  EXPECT_TRUE(validate_bench_json(parsed, &error)) << error;
}

TEST(ObsBench, ValidatorRejectsViolations) {
  BenchEmitter bench("unit_test", "none");
  bench.add_row("case-a").metric("wl", 1);
  std::string error;

  {  // wrong schema id
    json::Value doc = bench.to_json();
    doc["schema"] = "dgr-bench-v0";
    EXPECT_FALSE(validate_bench_json(doc, &error));
  }
  {  // rows must be present
    json::Value doc = json::Value::object();
    doc["schema"] = BenchEmitter::kSchemaId;
    doc["bench"] = "x";
    EXPECT_FALSE(validate_bench_json(doc, &error));
  }
  {  // metrics values must be numbers
    json::Value doc = bench.to_json();
    json::Value bad = json::Value::object();
    bad["case"] = "bad";
    bad["metrics"]["wl"] = "not-a-number";
    doc["rows"].push_back(std::move(bad));
    EXPECT_FALSE(validate_bench_json(doc, &error));
    EXPECT_NE(error.find("metrics"), std::string::npos) << error;
  }
}

// ---------------------------------------------------------------------------
// Integration: the full pipeline under observation
// ---------------------------------------------------------------------------

design::Design obs_design(std::uint64_t seed = 99) {
  design::IspdLikeParams p;
  p.name = "obs_small";
  p.grid_w = p.grid_h = 16;
  p.num_nets = 120;
  p.layers = 5;
  p.tracks_per_layer = 3;
  p.hotspot_affinity = 0.5;
  return design::generate_ispd_like(p, seed);
}

pipeline::RouterOptions obs_options() {
  pipeline::RouterOptions o;
  o.dgr.iterations = 60;
  o.dgr.temperature_interval = 20;
  o.dgr.record_telemetry = true;
  return o;
}

TEST(ObsIntegration, PipelineTraceHasNestedStageSpansAndSolverCounters) {
  if (!compiled_in()) GTEST_SKIP() << "built with DGR_OBS=OFF";
  ObsTestGuard guard;
  util::set_log_level(util::LogLevel::kError);
  metrics().counter("obs.convergence.unreserved_growth").reset();

  const design::Design d = obs_design();
  pipeline::RoutingContext ctx(d);
  pipeline::Pipeline pipe(ctx);
  const auto router = pipeline::make_router("dgr", obs_options());
  ASSERT_NE(router, nullptr);

  reset_trace();
  set_tracing(true);
  const pipeline::PipelineResult r =
      pipe.run(*router, {.maze_refine = true, .layer_assign = true});
  set_tracing(false);

  ASSERT_TRUE(r.stats.status.ok()) << r.stats.status.to_string();

  // Telemetry surfaced through RouterStats, one sample per kept iteration,
  // with zero unreserved growth (the train loop's no-allocation contract).
  EXPECT_EQ(r.stats.convergence.size(), 60u);
  EXPECT_EQ(metrics().counter("obs.convergence.unreserved_growth").value(), 0);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Value::parse(chrome_trace_json(), &doc, &error)) << error;

  struct Span {
    double lo = 0.0, hi = 0.0;
  };
  std::map<std::string, Span> first_span;
  std::map<std::string, std::size_t> counts;
  for (const json::Value& ev : doc.find("traceEvents")->items()) {
    const std::string& name = ev.find("name")->as_string();
    ++counts[name];
    const json::Value* ph = ev.find("ph");
    if (ph != nullptr && ph->as_string() == "X" && first_span.count(name) == 0) {
      const double lo = ev.find("ts")->as_number();
      first_span[name] = {lo, lo + ev.find("dur")->as_number()};
    }
  }

  // The acceptance spans: route / maze refine / layer assign / eval, all
  // nested inside pipeline.run.
  for (const char* stage : {"pipeline.run", "pipeline.route_total", "route.dgr",
                            "dag.forest_build", "core.train", "core.extract",
                            "pipeline.maze_refine", "post.maze_refine",
                            "pipeline.layer_assign", "post.layer_assign",
                            "pipeline.eval"}) {
    ASSERT_TRUE(first_span.count(stage)) << "missing span " << stage;
  }
  const Span run = first_span["pipeline.run"];
  for (const char* inner : {"pipeline.route_total", "pipeline.maze_refine",
                            "pipeline.layer_assign", "pipeline.eval"}) {
    EXPECT_GE(first_span[inner].lo, run.lo) << inner;
    EXPECT_LE(first_span[inner].hi, run.hi) << inner;
  }
  EXPECT_GE(first_span["core.train"].lo, first_span["route.dgr"].lo);
  EXPECT_LE(first_span["core.train"].hi, first_span["route.dgr"].hi);

  // Per-iteration solver counter series: one 'C' event per counter per step.
  for (const char* counter :
       {"dgr.loss", "dgr.overflow", "dgr.temperature", "dgr.grad_norm"}) {
    EXPECT_EQ(counts[counter], 60u) << counter;
  }
  EXPECT_EQ(counts["core.train_step"], 60u);
}

TEST(ObsIntegration, TracingPreservesBitwiseDeterminismAcrossWorkerCounts) {
  if (!compiled_in()) GTEST_SKIP() << "built with DGR_OBS=OFF";
  ObsTestGuard guard;
  util::set_log_level(util::LogLevel::kError);
  const design::Design d = obs_design(11);

  // The tracer only observes — with tracing ON the training trajectory must
  // stay bitwise identical across worker counts, and identical to the
  // untraced run.
  auto run_at = [&](std::size_t workers, bool traced) {
    util::set_worker_count(workers);
    reset_trace();
    set_tracing(traced);
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);
    const auto router = pipeline::make_router("dgr", obs_options());
    const pipeline::PipelineResult r = pipe.run(*router, {.layer_assign = false});
    set_tracing(false);
    std::vector<double> sig;
    for (const IterationSample& s : r.stats.convergence.samples()) {
      sig.push_back(s.loss);
      sig.push_back(s.grad_norm);
    }
    sig.push_back(r.metrics.total_overflow);
    sig.push_back(static_cast<double>(r.metrics.wirelength));
    return sig;
  };

  const std::vector<double> ref = run_at(1, /*traced=*/false);
  ASSERT_EQ(ref.size(), 2u * 60u + 2u);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::vector<double> got = run_at(workers, /*traced=*/true);
    ASSERT_EQ(got.size(), ref.size()) << workers;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i], ref[i]) << "workers=" << workers << " idx=" << i;
    }
  }
}

}  // namespace
}  // namespace dgr::obs
