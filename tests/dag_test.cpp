#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dag/forest.hpp"
#include "dag/path.hpp"
#include "dag/tree_candidates.hpp"
#include "design/generator.hpp"

namespace dgr::dag {
namespace {

using design::Design;
using design::Net;
using geom::Point;
using grid::GCellGrid;

Design small_design() {
  GCellGrid grid = GCellGrid::uniform(10, 10, 4, 2);
  std::vector<Net> nets;
  nets.push_back({"n0", {{0, 0}, {4, 3}}});
  nets.push_back({"n1", {{1, 8}, {6, 2}, {8, 8}}});
  nets.push_back({"local", {{5, 5}, {5, 5}}});
  nets.push_back({"straight", {{2, 2}, {2, 7}}});
  return Design("small", std::move(grid), std::move(nets));
}

// ---------------------------------------------------------------------------
// Pattern path enumeration
// ---------------------------------------------------------------------------

TEST(PatternPath, DegenerateSameCell) {
  const auto paths = enumerate_paths({3, 3}, {3, 3});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 0);
  EXPECT_EQ(paths[0].bend_count(), 0u);
}

TEST(PatternPath, StraightLineHasOneCandidate) {
  const auto paths = enumerate_paths({1, 1}, {5, 1});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 4);
  EXPECT_EQ(paths[0].bend_count(), 0u);
}

TEST(PatternPath, DiagonalGivesTwoLShapes) {
  const auto paths = enumerate_paths({1, 1}, {4, 5});
  ASSERT_EQ(paths.size(), 2u);
  for (const PatternPath& p : paths) {
    EXPECT_EQ(p.length(), 7);
    EXPECT_EQ(p.bend_count(), 1u);
  }
  // The two bends are distinct (HV and VH orders).
  EXPECT_NE(paths[0].waypoints[1], paths[1].waypoints[1]);
  EXPECT_EQ(paths[0].waypoints[1], (Point{4, 1}));  // horizontal-first
  EXPECT_EQ(paths[1].waypoints[1], (Point{1, 5}));  // vertical-first
}

TEST(PatternPath, ZSamplesAddJoggedPaths) {
  PathEnumOptions opts;
  opts.z_samples = 3;
  const auto paths = enumerate_paths({0, 0}, {6, 6}, opts);
  EXPECT_GT(paths.size(), 2u);
  const GCellGrid grid = GCellGrid::uniform(8, 8, 2, 1);
  for (const PatternPath& p : paths) {
    EXPECT_TRUE(path_is_valid(p, grid));
    EXPECT_EQ(p.length(), 12);  // monotone: all same length
    EXPECT_LE(p.bend_count(), 2u);
  }
  // No duplicates.
  std::set<std::vector<Point>> unique;
  for (const PatternPath& p : paths) unique.insert(p.waypoints);
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(PatternPath, ZSamplesSkipNarrowSpans) {
  PathEnumOptions opts;
  opts.z_samples = 4;
  // |dx| = 1: no x strictly between -> HVH impossible; |dy| = 5 allows VHV.
  const auto paths = enumerate_paths({0, 0}, {1, 5}, opts);
  for (const PatternPath& p : paths) {
    EXPECT_LE(p.bend_count(), 2u);
  }
  EXPECT_GE(paths.size(), 3u);  // 2 L + at least 1 VHV
}

TEST(PatternPath, EdgesWalkIsContiguous) {
  const GCellGrid grid = GCellGrid::uniform(10, 10, 2, 1);
  const auto paths = enumerate_paths({2, 3}, {7, 6});
  for (const PatternPath& p : paths) {
    const auto edges = p.edges(grid);
    EXPECT_EQ(edges.size(), 8u);  // manhattan distance
    std::set<grid::EdgeId> unique(edges.begin(), edges.end());
    EXPECT_EQ(unique.size(), edges.size());  // monotone: no repeats
  }
}

TEST(PatternPath, ValidityRejectsNonRectilinear) {
  const GCellGrid grid = GCellGrid::uniform(10, 10, 2, 1);
  PatternPath diag{{{0, 0}, {3, 3}}};
  EXPECT_FALSE(path_is_valid(diag, grid));
  PatternPath dup{{{0, 0}, {0, 0}, {3, 0}}};
  EXPECT_FALSE(path_is_valid(dup, grid));
  PatternPath out{{{0, 0}, {12, 0}}};
  EXPECT_FALSE(path_is_valid(out, grid));
}

TEST(PatternPath, ValidityRejectsNonMonotone) {
  const GCellGrid grid = GCellGrid::uniform(10, 10, 2, 1);
  PatternPath zigzag{{{0, 0}, {4, 0}, {4, 2}, {2, 2}}};  // x reverses
  EXPECT_FALSE(path_is_valid(zigzag, grid));
  PatternPath ok{{{0, 0}, {4, 0}, {4, 2}, {6, 2}}};
  EXPECT_TRUE(path_is_valid(ok, grid));
}

// ---------------------------------------------------------------------------
// Congestion estimate & tree candidates
// ---------------------------------------------------------------------------

TEST(CongestionEstimate, ConservesWireMass) {
  const Design d = small_design();
  const auto est = estimate_congestion(d);
  double total = 0.0;
  for (const float v : est) total += v;
  // Each routable net spreads (w + h) expected crossings = its HPWL.
  double expected = 0.0;
  for (const std::size_t n : d.routable_nets()) {
    expected += static_cast<double>(geom::Rect::bounding_box(d.net(n).pins).hpwl());
  }
  EXPECT_NEAR(total, expected, 1e-3);
}

TEST(CongestionEstimate, ZeroForLocalOnlyDesign) {
  GCellGrid grid = GCellGrid::uniform(5, 5, 2, 1);
  std::vector<Net> nets{{"l", {{2, 2}, {2, 2}}}};
  const Design d("x", std::move(grid), std::move(nets));
  for (const float v : estimate_congestion(d)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(TreeCandidates, FirstCandidateIsRsmtAndDeduped) {
  const Design d = small_design();
  TreeCandidateOptions opts;
  opts.congestion_shifted = true;
  opts.trunk_topology = true;
  const TreeCandidateGenerator gen(d, opts);
  const auto cands = gen.generate(1);  // the 3-pin net
  ASSERT_GE(cands.size(), 1u);
  EXPECT_TRUE(cands[0].is_spanning_tree());
  std::set<std::vector<std::pair<Point, Point>>> keys;
  for (const auto& t : cands) {
    EXPECT_TRUE(t.is_spanning_tree());
    keys.insert(t.canonical_edges());
  }
  EXPECT_EQ(keys.size(), cands.size());  // all distinct
}

TEST(TreeCandidates, TwoPinNetsGetOneOrTwoCandidates) {
  const Design d = small_design();
  const TreeCandidateGenerator gen(d, {});
  const auto cands = gen.generate(0);
  // Two pins: RSMT is the direct edge; shifting has no Steiner node to move.
  EXPECT_EQ(cands.size(), 1u);
}

// ---------------------------------------------------------------------------
// DagForest structure
// ---------------------------------------------------------------------------

TEST(DagForest, PoolsAreContiguousAndConsistent) {
  const Design d = small_design();
  ForestOptions opts;
  opts.tree.trunk_topology = true;
  const DagForest f = DagForest::build(d, opts);

  EXPECT_EQ(f.net_count(), d.routable_nets().size());
  const auto& offs = f.net_tree_offsets();
  ASSERT_EQ(offs.size(), f.net_count() + 1);
  EXPECT_EQ(offs.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(offs.back()), f.trees().size());

  // Trees grouped by net, subnets by tree, paths by subnet.
  for (std::size_t n = 0; n < f.net_count(); ++n) {
    for (std::int32_t t = offs[n]; t < offs[n + 1]; ++t) {
      EXPECT_EQ(f.trees()[static_cast<std::size_t>(t)].net, static_cast<std::int32_t>(n));
    }
  }
  std::int32_t expect_subnet = 0;
  for (std::size_t t = 0; t < f.trees().size(); ++t) {
    const TreeCandidate& tc = f.trees()[t];
    EXPECT_EQ(tc.subnet_begin, expect_subnet);
    EXPECT_LE(tc.subnet_begin, tc.subnet_end);
    expect_subnet = tc.subnet_end;
    for (std::int32_t s = tc.subnet_begin; s < tc.subnet_end; ++s) {
      EXPECT_EQ(f.subnets()[static_cast<std::size_t>(s)].tree, static_cast<std::int32_t>(t));
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(expect_subnet), f.subnets().size());

  std::int32_t expect_path = 0;
  for (std::size_t s = 0; s < f.subnets().size(); ++s) {
    const Subnet& sn = f.subnets()[s];
    EXPECT_EQ(sn.path_begin, expect_path);
    EXPECT_LT(sn.path_begin, sn.path_end);  // at least one candidate
    expect_path = sn.path_end;
    for (std::int32_t i = sn.path_begin; i < sn.path_end; ++i) {
      EXPECT_EQ(f.paths()[static_cast<std::size_t>(i)].subnet, static_cast<std::int32_t>(s));
      EXPECT_EQ(f.paths()[static_cast<std::size_t>(i)].tree, sn.tree);
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(expect_path), f.paths().size());
}

TEST(DagForest, PathDataMatchesGeometry) {
  const Design d = small_design();
  const DagForest f = DagForest::build(d);
  for (std::size_t i = 0; i < f.paths().size(); ++i) {
    const PathCandidate& pc = f.paths()[i];
    const PatternPath geo = f.path_geometry(i);
    EXPECT_TRUE(path_is_valid(geo, d.grid()));
    EXPECT_FLOAT_EQ(pc.wirelength, static_cast<float>(geo.length()));
    EXPECT_EQ(pc.turns, static_cast<std::int32_t>(geo.bend_count()));
    const Subnet& sn = f.subnets()[static_cast<std::size_t>(pc.subnet)];
    EXPECT_EQ(geo.waypoints.front(), sn.a);
    EXPECT_EQ(geo.waypoints.back(), sn.b);
  }
}

TEST(DagForest, IncidenceWeightsIncludeViaCharge) {
  const Design d = small_design();
  ForestOptions opts;
  opts.via_demand_beta = 0.8f;
  const DagForest f = DagForest::build(d, opts);
  for (std::size_t i = 0; i < f.paths().size(); ++i) {
    const PathCandidate& pc = f.paths()[i];
    double weight_sum = 0.0;
    for (std::uint32_t k = pc.inc_begin; k < pc.inc_end; ++k) {
      weight_sum += f.inc_weights()[k];
    }
    // Total = wirelength + beta/2 per via-adjacent edge. A bend in the path
    // interior charges 2 edges, a bend at the path end only 1.
    const double wire = pc.wirelength;
    EXPECT_GE(weight_sum, wire - 1e-5);
    EXPECT_LE(weight_sum, wire + 0.8 * pc.turns + 1e-5);
    if (pc.turns > 0) {
      EXPECT_GT(weight_sum, wire + 1e-6);
    }
  }
}

TEST(DagForest, ZeroBetaGivesUnitWeights) {
  const Design d = small_design();
  ForestOptions opts;
  opts.via_demand_beta = 0.0f;
  const DagForest f = DagForest::build(d, opts);
  for (const float w : f.inc_weights()) EXPECT_FLOAT_EQ(w, 1.0f);
}

TEST(DagForest, TransposeIsExactTranspose) {
  const Design d = small_design();
  const DagForest f = DagForest::build(d);
  // Collect (path, edge, weight) triples from both representations.
  std::map<std::pair<std::int32_t, grid::EdgeId>, float> fwd, bwd;
  for (std::size_t i = 0; i < f.paths().size(); ++i) {
    const PathCandidate& pc = f.paths()[i];
    for (std::uint32_t k = pc.inc_begin; k < pc.inc_end; ++k) {
      fwd[{static_cast<std::int32_t>(i), f.inc_edges()[k]}] += f.inc_weights()[k];
    }
  }
  const auto& eo = f.edge_inc_offsets();
  for (std::size_t e = 0; e + 1 < eo.size(); ++e) {
    for (std::uint32_t k = eo[e]; k < eo[e + 1]; ++k) {
      bwd[{f.edge_inc_paths()[k], static_cast<grid::EdgeId>(e)}] +=
          f.edge_inc_weights()[k];
    }
  }
  EXPECT_EQ(fwd.size(), bwd.size());
  for (const auto& [key, w] : fwd) {
    auto it = bwd.find(key);
    ASSERT_NE(it, bwd.end());
    EXPECT_FLOAT_EQ(it->second, w);
  }
}

TEST(DagForest, LocalNetsExcluded) {
  const Design d = small_design();
  const DagForest f = DagForest::build(d);
  for (std::size_t n = 0; n < f.net_count(); ++n) {
    EXPECT_FALSE(d.net(f.design_net(n)).is_local());
  }
}

TEST(DagForest, ParallelAndSerialBuildsAgree) {
  design::IspdLikeParams p;
  p.num_nets = 120;
  p.grid_w = 24;
  p.grid_h = 24;
  const Design d = design::generate_ispd_like(p, 9);
  ForestOptions serial;
  serial.parallel_build = false;
  ForestOptions parallel;
  parallel.parallel_build = true;
  const DagForest a = DagForest::build(d, serial);
  const DagForest b = DagForest::build(d, parallel);
  ASSERT_EQ(a.paths().size(), b.paths().size());
  ASSERT_EQ(a.trees().size(), b.trees().size());
  ASSERT_EQ(a.inc_edges().size(), b.inc_edges().size());
  EXPECT_EQ(a.inc_edges(), b.inc_edges());
  for (std::size_t i = 0; i < a.paths().size(); ++i) {
    EXPECT_EQ(a.paths()[i].subnet, b.paths()[i].subnet);
    EXPECT_FLOAT_EQ(a.paths()[i].wirelength, b.paths()[i].wirelength);
  }
}

TEST(DagForest, MemoryAccountingIsPositiveAndGrows) {
  design::IspdLikeParams small;
  small.num_nets = 50;
  design::IspdLikeParams big = small;
  big.num_nets = 500;
  const DagForest fs = DagForest::build(design::generate_ispd_like(small, 2));
  const DagForest fb = DagForest::build(design::generate_ispd_like(big, 2));
  EXPECT_GT(fs.memory_bytes(), 0u);
  EXPECT_GT(fb.memory_bytes(), fs.memory_bytes());
}

TEST(DagForest, ZShapesEnlargeThePool) {
  const Design d = small_design();
  ForestOptions base;
  ForestOptions zopts;
  zopts.paths.z_samples = 2;
  const DagForest a = DagForest::build(d, base);
  const DagForest b = DagForest::build(d, zopts);
  EXPECT_GT(b.paths().size(), a.paths().size());
  EXPECT_EQ(a.subnets().size(), b.subnets().size());
}


TEST(DagForest, AdaptiveExpansionTargetsCongestedSubnets) {
  // A hot column: many nets crossing the same region, plus one net far away.
  GCellGrid grid = GCellGrid::uniform(16, 16, 2, 1);  // base capacity 1
  std::vector<Net> nets;
  for (int i = 0; i < 8; ++i) {
    nets.push_back({"hot" + std::to_string(i), {{2, 2}, {6, 6}}});
  }
  nets.push_back({"cold", {{10, 10}, {14, 14}}});
  const Design d("adaptive", std::move(grid), std::move(nets));

  ForestOptions plain;
  plain.tree.congestion_shifted = false;
  ForestOptions adaptive = plain;
  adaptive.adaptive_expansion = true;
  adaptive.adaptive_threshold = 0.8f;
  adaptive.adaptive_z_samples = 3;

  const DagForest fp = DagForest::build(d, plain);
  const DagForest fa = DagForest::build(d, adaptive);
  EXPECT_GT(fa.paths().size(), fp.paths().size());

  // Hot nets gained candidates; the cold net did not.
  auto paths_of_net = [](const DagForest& f, std::size_t n) {
    std::size_t count = 0;
    for (const PathCandidate& pc : f.paths()) {
      if (pc.net == static_cast<std::int32_t>(n)) ++count;
    }
    return count;
  };
  EXPECT_GT(paths_of_net(fa, 0), paths_of_net(fp, 0));
  EXPECT_EQ(paths_of_net(fa, 8), paths_of_net(fp, 8));
}

TEST(DagForest, AdaptiveExpansionNoopOnQuietDesign) {
  GCellGrid grid = GCellGrid::uniform(20, 20, 4, 8);  // plenty of capacity
  std::vector<Net> nets{{"n", {{1, 1}, {6, 7}}}};
  const Design d("quiet", std::move(grid), std::move(nets));
  ForestOptions adaptive;
  adaptive.adaptive_expansion = true;
  const DagForest fa = DagForest::build(d, adaptive);
  const DagForest fp = DagForest::build(d, {});
  EXPECT_EQ(fa.paths().size(), fp.paths().size());
}


TEST(PatternPath, CShapesDetourOutsideTheBox) {
  const GCellGrid grid = GCellGrid::uniform(20, 20, 2, 1);
  PathEnumOptions opts;
  opts.c_samples = 2;
  opts.c_detour = 2;
  const auto paths = enumerate_paths({5, 5}, {10, 8}, opts, grid);
  // 2 L-shapes plus up to 8 C-shapes (2 samples x 4 sides).
  EXPECT_GT(paths.size(), 2u);
  const geom::Rect box = geom::Rect::bounding_box({Point{5, 5}, Point{10, 8}});
  bool any_outside = false;
  for (const PatternPath& p : paths) {
    EXPECT_TRUE(path_is_valid(p, grid, /*require_monotone=*/false));
    for (const Point& w : p.waypoints) {
      if (!box.contains(w)) any_outside = true;
    }
    // C-shapes pay exactly 2 * detour extra wirelength.
    EXPECT_GE(p.length(), geom::manhattan({5, 5}, {10, 8}));
  }
  EXPECT_TRUE(any_outside);
}

TEST(PatternPath, CShapesOnStraightSpanAreProperUs) {
  const GCellGrid grid = GCellGrid::uniform(12, 12, 2, 1);
  PathEnumOptions opts;
  opts.c_samples = 1;
  opts.c_detour = 1;
  const auto paths = enumerate_paths({3, 2}, {3, 9}, opts, grid);
  EXPECT_GE(paths.size(), 3u);  // straight + left U + right U
  for (const PatternPath& p : paths) {
    // No out-and-back: edge lists must never repeat an edge.
    const auto edges = p.edges(grid);
    std::set<grid::EdgeId> unique(edges.begin(), edges.end());
    EXPECT_EQ(unique.size(), edges.size());
  }
}

TEST(PatternPath, CShapesClampedAtGridBoundary) {
  const GCellGrid grid = GCellGrid::uniform(8, 8, 2, 1);
  PathEnumOptions opts;
  opts.c_samples = 3;
  opts.c_detour = 4;  // mostly off-grid
  const auto paths = enumerate_paths({0, 0}, {7, 7}, opts, grid);
  for (const PatternPath& p : paths) {
    EXPECT_TRUE(path_is_valid(p, grid, /*require_monotone=*/false));
  }
}

TEST(DagForest, CShapeForestStillConsistent) {
  const Design d = small_design();
  ForestOptions opts;
  opts.paths.c_samples = 1;
  opts.paths.c_detour = 1;
  const DagForest f = DagForest::build(d, opts);
  const DagForest base = DagForest::build(d, {});
  EXPECT_GT(f.paths().size(), base.paths().size());
  for (std::size_t i = 0; i < f.paths().size(); ++i) {
    const PatternPath geo = f.path_geometry(i);
    EXPECT_TRUE(path_is_valid(geo, d.grid(), /*require_monotone=*/false));
    EXPECT_FLOAT_EQ(f.paths()[i].wirelength, static_cast<float>(geo.length()));
  }
}

}  // namespace
}  // namespace dgr::dag
