#include <gtest/gtest.h>

#include "design/generator.hpp"
#include "eval/metrics.hpp"
#include "post/layer_assign.hpp"
#include "post/maze_refine.hpp"
#include "routers/cugr2lite.hpp"

namespace dgr::post {
namespace {

using design::Design;
using design::Net;
using eval::NetRoute;
using eval::RouteSolution;
using geom::Point;
using grid::Dir;
using grid::GCellGrid;

/// Hand-built solution: one net with an L route, one straight net.
struct Fixture {
  std::unique_ptr<Design> design;
  RouteSolution sol;

  static Fixture make() {
    Fixture fx;
    GCellGrid grid = GCellGrid::uniform(8, 8, 4, 3);
    std::vector<Net> nets;
    nets.push_back({"l", {{0, 0}, {4, 4}}});
    nets.push_back({"s", {{1, 6}, {6, 6}}});
    fx.design = std::make_unique<Design>("fx", std::move(grid), std::move(nets));
    fx.sol.design = fx.design.get();
    NetRoute l;
    l.design_net = 0;
    l.paths.push_back(dag::PatternPath{{{0, 0}, {4, 0}, {4, 4}}});
    NetRoute s;
    s.design_net = 1;
    s.paths.push_back(dag::PatternPath{{{1, 6}, {6, 6}}});
    fx.sol.nets = {l, s};
    return fx;
  }
};

TEST(LayerAssign, LegsGoToMatchingDirectionLayers) {
  Fixture fx = Fixture::make();
  const auto la = assign_layers(fx.sol, fx.design->capacities());
  ASSERT_EQ(la.leg_layers.size(), 2u);
  ASSERT_EQ(la.leg_layers[0].size(), 2u);  // two legs of the L
  ASSERT_EQ(la.leg_layers[1].size(), 1u);
  const auto& layers = fx.design->grid().layers();
  // Leg 0 of net 0 is horizontal, leg 1 vertical, net 1's single leg horizontal.
  EXPECT_EQ(layers[static_cast<std::size_t>(la.leg_layers[0][0])].dir, Dir::kHorizontal);
  EXPECT_EQ(layers[static_cast<std::size_t>(la.leg_layers[0][1])].dir, Dir::kVertical);
  EXPECT_EQ(layers[static_cast<std::size_t>(la.leg_layers[1][0])].dir, Dir::kHorizontal);
}

TEST(LayerAssign, ViaCountCoversPinAccessAndBends) {
  Fixture fx = Fixture::make();
  const auto la = assign_layers(fx.sol, fx.design->capacities());
  // Net 0's bend joins an H layer and a V layer (>= 1 apart) and its far pin
  // needs access from the V layer: at least 2 vias. Net 1 can sit entirely on
  // the pin layer.
  EXPECT_GE(la.via_count, 2);
  // Sanity upper bound: no junction can need more than L-1 vias, and we have
  // few junctions.
  EXPECT_LE(la.via_count, 30);
}

TEST(LayerAssign, NoOverflowOnUncongestedFixture) {
  Fixture fx = Fixture::make();
  const auto la = assign_layers(fx.sol, fx.design->capacities());
  EXPECT_EQ(la.overflowed_layer_edges, 0);
  EXPECT_EQ(la.nets_with_overflow, 0);
}

TEST(LayerAssign, SharedColumnSpreadsAcrossLayers) {
  // Many nets through the same vertical column: the DP must spread them over
  // the V layers instead of stacking them on one.
  GCellGrid grid = GCellGrid::uniform(4, 10, 6, 2);  // V layers: 1,3,5
  std::vector<Net> nets;
  RouteSolution sol;
  const int kNets = 6;
  for (int i = 0; i < kNets; ++i) {
    nets.push_back({"n" + std::to_string(i), {{1, 0}, {1, 9}}});
  }
  auto design = std::make_unique<Design>("col", std::move(grid), std::move(nets));
  sol.design = design.get();
  for (int i = 0; i < kNets; ++i) {
    NetRoute r;
    r.design_net = static_cast<std::size_t>(i);
    r.paths.push_back(dag::PatternPath{{{1, 0}, {1, 9}}});
    sol.nets.push_back(r);
  }
  const auto cap = design->capacities();
  const auto la = assign_layers(sol, cap);
  std::set<int> used;
  for (int i = 0; i < kNets; ++i) used.insert(la.leg_layers[static_cast<std::size_t>(i)][0]);
  EXPECT_GE(used.size(), 2u);  // spread across at least 2 V layers
}

TEST(LayerAssign, EmptyRoutesAreHandled) {
  GCellGrid grid = GCellGrid::uniform(4, 4, 4, 2);
  std::vector<Net> nets{{"n", {{0, 0}, {2, 2}}}};
  auto design = std::make_unique<Design>("e", std::move(grid), std::move(nets));
  RouteSolution sol;
  sol.design = design.get();
  sol.nets.push_back(NetRoute{0, {}});
  const auto la = assign_layers(sol, design->capacities());
  EXPECT_EQ(la.via_count, 0);
}

TEST(LayerAssign, EndToEndAfterRouter) {
  design::IspdLikeParams p;
  p.num_nets = 200;
  p.grid_w = p.grid_h = 20;
  p.layers = 5;
  const Design d = design::generate_ispd_like(p, 55);
  const auto cap = d.capacities();
  routers::Cugr2Lite router(d, cap);
  const RouteSolution sol = router.route();
  const auto la = assign_layers(sol, cap);
  EXPECT_EQ(la.leg_layers.size(), sol.nets.size());
  EXPECT_GT(la.via_count, 0);
  // Every leg got a real layer of the right direction.
  const auto& layers = d.grid().layers();
  for (std::size_t n = 0; n < sol.nets.size(); ++n) {
    std::size_t flat = 0;
    for (const dag::PatternPath& path : sol.nets[n].paths) {
      for (std::size_t k = 0; k + 1 < path.waypoints.size(); ++k) {
        const Point a = path.waypoints[k];
        const Point b = path.waypoints[k + 1];
        if (a == b) continue;
        const int layer = la.leg_layers[n][flat++];
        ASSERT_GE(layer, 0);
        ASSERT_LT(layer, d.grid().layer_count());
        const Dir want = (a.y == b.y) ? Dir::kHorizontal : Dir::kVertical;
        EXPECT_EQ(layers[static_cast<std::size_t>(layer)].dir, want);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Maze refinement
// ---------------------------------------------------------------------------

/// A deliberately bad solution: both nets stacked on the same straight line
/// across a capacity-1 grid.
struct CongestedFixture {
  std::unique_ptr<Design> design;
  std::vector<float> cap;
  RouteSolution sol;

  static CongestedFixture make() {
    CongestedFixture fx;
    GCellGrid grid = GCellGrid::uniform(8, 8, 2, 1);
    std::vector<Net> nets;
    nets.push_back({"a", {{0, 3}, {7, 3}}});
    nets.push_back({"b", {{0, 3}, {7, 3}}});
    fx.design = std::make_unique<Design>("cong", std::move(grid), std::move(nets));
    fx.cap.assign(static_cast<std::size_t>(fx.design->grid().edge_count()), 1.0f);
    fx.sol.design = fx.design.get();
    for (std::size_t i = 0; i < 2; ++i) {
      NetRoute r;
      r.design_net = i;
      r.paths.push_back(dag::PatternPath{{{0, 3}, {7, 3}}});
      fx.sol.nets.push_back(r);
    }
    return fx;
  }
};

TEST(MazeRefine, ReducesOverflowAndKeepsConnectivity) {
  CongestedFixture fx = CongestedFixture::make();
  const double before = fx.sol.demand(0.5f).total_overflow(fx.cap);
  EXPECT_GT(before, 0.0);
  MazeRefineOptions opts;
  const MazeRefineStats stats = maze_refine(fx.sol, fx.cap, opts);
  EXPECT_LE(stats.overflow_after, stats.overflow_before);
  EXPECT_LT(stats.overflow_after, before);
  EXPECT_TRUE(fx.sol.connects_all_pins());
  EXPECT_GT(stats.nets_rerouted, 0);
}

TEST(MazeRefine, NoopOnCleanSolution) {
  Fixture fx = Fixture::make();
  const auto cap = fx.design->capacities();
  const MazeRefineStats stats = maze_refine(fx.sol, cap);
  EXPECT_EQ(stats.nets_rerouted, 0);
  EXPECT_DOUBLE_EQ(stats.overflow_before, 0.0);
  EXPECT_DOUBLE_EQ(stats.overflow_after, 0.0);
}

TEST(MazeRefine, MonotoneOverRounds) {
  CongestedFixture fx = CongestedFixture::make();
  MazeRefineOptions opts;
  opts.max_rounds = 5;
  opts.via_beta = 0.0f;  // wire-only: bends on cap-1 edges are then free
  const MazeRefineStats stats = maze_refine(fx.sol, fx.cap, opts);
  EXPECT_LE(stats.overflow_after, stats.overflow_before);
  // Two parallel nets on a cap-1 grid can always be fully separated.
  EXPECT_DOUBLE_EQ(stats.overflow_after, 0.0);
}

TEST(MazeRefine, EndToEndAfterRouterOnCongestedCase) {
  design::IspdLikeParams p;
  p.num_nets = 400;
  p.grid_w = p.grid_h = 18;
  p.layers = 5;
  p.tracks_per_layer = 2;
  p.hotspot_affinity = 0.7;
  const Design d = design::generate_ispd_like(p, 77);
  const auto cap = d.capacities();
  routers::Cugr2LiteOptions ropts;
  ropts.rrr_rounds = 1;
  routers::Cugr2Lite router(d, cap, ropts);
  RouteSolution sol = router.route();
  const MazeRefineStats stats = maze_refine(sol, cap);
  EXPECT_LE(stats.overflow_after, stats.overflow_before + 1e-9);
  EXPECT_TRUE(sol.connects_all_pins());
}

}  // namespace
}  // namespace dgr::post
