#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ad/gradcheck.hpp"
#include "ad/simd.hpp"
#include "core/batch.hpp"
#include "core/solver.hpp"
#include "obs/metrics.hpp"
#include "design/generator.hpp"
#include "eval/metrics.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace dgr::core {
namespace {

using design::Design;
using design::Net;
using grid::GCellGrid;

/// Two nets forced through a 1-capacity corridor: the canonical instance
/// where per-net greedy fails and concurrent optimisation must coordinate.
/// Both nets span the same diagonal; each has two L-shape choices; total
/// overflow is zero iff they pick opposite Ls.
// The forest keeps a pointer to its design, so both live behind stable
// heap storage; the fixture can then be moved freely.
struct ConflictFixture {
  std::unique_ptr<Design> design_ptr;
  std::vector<float> cap;
  std::unique_ptr<dag::DagForest> forest_ptr;
  Design& design() { return *design_ptr; }
  dag::DagForest& forest() { return *forest_ptr; }

  static ConflictFixture make() {
    ConflictFixture fx;
    GCellGrid grid = GCellGrid::uniform(6, 6, 2, 1);
    std::vector<Net> nets;
    nets.push_back({"a", {{0, 0}, {5, 5}}});
    nets.push_back({"b", {{0, 0}, {5, 5}}});
    fx.design_ptr = std::make_unique<Design>("conflict", std::move(grid), std::move(nets));
    fx.cap.assign(static_cast<std::size_t>(fx.design().grid().edge_count()), 1.0f);
    dag::ForestOptions opts;
    opts.tree.congestion_shifted = false;
    opts.via_demand_beta = 0.0f;
    fx.forest_ptr =
        std::make_unique<dag::DagForest>(dag::DagForest::build(fx.design(), opts));
    return fx;
  }
};

DgrConfig fast_config() {
  DgrConfig config;
  config.iterations = 200;
  config.temperature_interval = 40;
  config.record_history = true;
  return config;
}

/// Pins the runtime SIMD toggle for tests whose expectations are functions
/// of exact scalar arithmetic (trajectory identity on a knife-edge fixture,
/// finite differences at libm precision). No-op in non-SIMD builds.
class ScalarModeGuard {
 public:
  ScalarModeGuard() : prev_(ad::simd::enabled()) { ad::simd::set_enabled(false); }
  ~ScalarModeGuard() { ad::simd::set_enabled(prev_); }

 private:
  bool prev_;
};

TEST(Relaxation, StructuresMatchForest) {
  auto fx = ConflictFixture::make();
  const Relaxation r = Relaxation::build(fx.forest());
  EXPECT_EQ(r.path_count(), fx.forest().paths().size());
  EXPECT_EQ(r.subnet_count(), fx.forest().subnets().size());
  EXPECT_EQ(r.tree_count(), fx.forest().trees().size());
  EXPECT_EQ(r.path_inc_offsets.size(), r.path_count() + 1);
  EXPECT_EQ(r.wirelength.size(), r.path_count());
  EXPECT_GT(r.memory_bytes(), 0u);
  // Each 2-pin diagonal subnet has exactly 2 L candidates.
  for (std::size_t s = 0; s < r.subnet_count(); ++s) {
    EXPECT_EQ(r.path_group_offsets[s + 1] - r.path_group_offsets[s], 2);
  }
}

TEST(DgrSolver, RejectsWrongCapacitySize) {
  auto fx = ConflictFixture::make();
  std::vector<float> bad(3, 1.0f);
  EXPECT_THROW(DgrSolver(fx.forest(), bad, {}), std::invalid_argument);
}

TEST(DgrSolver, TemperatureAnnealingSchedule) {
  auto fx = ConflictFixture::make();
  DgrConfig config;
  config.initial_temperature = 1.0f;
  config.temperature_decay = 0.9f;
  config.temperature_interval = 100;
  DgrSolver solver(fx.forest(), fx.cap, config);
  EXPECT_FLOAT_EQ(solver.temperature_at(0), 1.0f);
  EXPECT_FLOAT_EQ(solver.temperature_at(99), 1.0f);
  EXPECT_FLOAT_EQ(solver.temperature_at(100), 0.9f);
  EXPECT_FLOAT_EQ(solver.temperature_at(999), std::pow(0.9f, 9.0f));
}

TEST(DgrSolver, ProbabilitiesAreValidDistributions) {
  auto fx = ConflictFixture::make();
  DgrSolver solver(fx.forest(), fx.cap, fast_config());
  const auto p = solver.path_probs(1.0f);
  const Relaxation& r = solver.relaxation();
  for (std::size_t s = 0; s < r.subnet_count(); ++s) {
    double sum = 0.0;
    for (auto i = r.path_group_offsets[s]; i < r.path_group_offsets[s + 1]; ++i) {
      sum += p[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  const auto q = solver.tree_probs(1.0f);
  for (std::size_t n = 0; n + 1 < r.tree_group_offsets.size(); ++n) {
    double sum = 0.0;
    for (auto j = r.tree_group_offsets[n]; j < r.tree_group_offsets[n + 1]; ++j) {
      sum += q[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(DgrSolver, TrainingReducesCost) {
  auto fx = ConflictFixture::make();
  // Note: sigmoid is exactly flat on this symmetric fixture (the two L's
  // demands are complementary and sigmoid(x)+sigmoid(-x)=1), so use exp,
  // which is strictly convex and rewards splitting the nets.
  DgrConfig cfg = fast_config();
  cfg.activation = ad::Activation::kExp;
  DgrSolver solver(fx.forest(), fx.cap, cfg);
  const CostBreakdown before = solver.evaluate(1.0f);
  const TrainStats stats = solver.train();
  EXPECT_EQ(stats.iterations_run, 200);
  EXPECT_LT(stats.final_cost.total, before.total);
  ASSERT_EQ(stats.cost_history.size(), 200u);
  // Late-phase average training cost below early-phase average.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 50; ++i) early += stats.cost_history[static_cast<std::size_t>(i)];
  for (int i = 150; i < 200; ++i) late += stats.cost_history[static_cast<std::size_t>(i)];
  EXPECT_LT(late, early);
}

TEST(DgrSolver, ResolvesTheTwoNetConflict) {
  // The symmetric fixture is a knife-edge instance (about half of all seeds
  // resolve it); this test pins the scalar exp so the expectation stays a
  // deterministic function of the seed across the DGR_SIMD preset matrix.
  ScalarModeGuard scalar;
  auto fx = ConflictFixture::make();
  DgrConfig config = fast_config();
  config.iterations = 400;
  DgrSolver solver(fx.forest(), fx.cap, config);
  solver.train();
  const eval::RouteSolution sol = solver.extract();
  EXPECT_TRUE(sol.connects_all_pins());
  const eval::Metrics m = eval::compute_metrics(sol, fx.cap, 0.0f);
  // Opposite L-shapes give zero overflow at minimum wirelength.
  EXPECT_EQ(m.overflow_edges, 0);
  EXPECT_EQ(m.wirelength, 20);
}

TEST(DgrSolver, DeterministicForFixedSeed) {
  auto fx = ConflictFixture::make();
  DgrConfig config = fast_config();
  config.iterations = 50;
  DgrSolver a(fx.forest(), fx.cap, config);
  DgrSolver b(fx.forest(), fx.cap, config);
  a.train();
  b.train();
  ASSERT_EQ(a.logits().size(), b.logits().size());
  for (std::size_t i = 0; i < a.logits().size(); ++i) {
    EXPECT_FLOAT_EQ(a.logits()[i], b.logits()[i]) << i;
  }
}

TEST(DgrSolver, SeedsChangeTheTrajectory) {
  auto fx = ConflictFixture::make();
  DgrConfig c1 = fast_config();
  c1.iterations = 30;
  DgrConfig c2 = c1;
  c2.seed = 999;
  DgrSolver a(fx.forest(), fx.cap, c1);
  DgrSolver b(fx.forest(), fx.cap, c2);
  a.train();
  b.train();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.logits().size(); ++i) {
    if (a.logits()[i] != b.logits()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DgrSolver, GumbelOffIsPlainSoftmaxDescent) {
  auto fx = ConflictFixture::make();
  DgrConfig config = fast_config();
  config.use_gumbel = false;
  config.iterations = 100;
  DgrSolver solver(fx.forest(), fx.cap, config);
  const TrainStats stats = solver.train();
  EXPECT_LT(stats.final_cost.total, solver.evaluate(10.0f).total + 1e9);  // runs at all
  const eval::RouteSolution sol = solver.extract();
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(DgrSolver, AnalyticGradientMatchesFiniteDifferences) {
  // End-to-end gradcheck of the real forward pass on the conflict fixture.
  // Scalar mode: central differences at h=1e-3 cannot resolve the vector
  // exp's ~2e-7 relative noise on a ~1e4 objective; the SIMD kernels carry
  // their own tolerance gradchecks in ad_test (Simd.*).
  ScalarModeGuard scalar;
  auto fx = ConflictFixture::make();
  DgrConfig config;
  config.use_gumbel = false;
  DgrSolver solver(fx.forest(), fx.cap, config);

  // Custom wrapper: copy params in, evaluate the exact training objective.
  auto with_params = [&](const std::vector<float>& params) -> double {
    std::copy(params.begin(), params.end(), solver.logits().begin());
    return solver.evaluate(1.0f).total;
  };
  std::vector<float> params = solver.logits();

  // Analytic gradient via one no-noise backward pass.
  ad::Tape tape;
  const std::size_t np = solver.path_logit_count();
  const std::size_t nt = solver.tree_logit_count();
  const ad::NodeId pl = tape.input(params.data(), np);
  const ad::NodeId tl = tape.input(params.data() + np, nt);
  const Relaxation& r = solver.relaxation();
  const ad::NodeId p = ad::segment_softmax(tape, pl, r.path_group_offsets, 1.0f);
  const ad::NodeId q = ad::segment_softmax(tape, tl, r.tree_group_offsets, 1.0f);
  const ad::NodeId eff = ad::gather_mul(tape, q, r.path_tree, p);
  const ad::NodeId d = ad::spmv(tape, eff, r.incidence);
  const ad::NodeId slack = ad::sub_const(tape, d, solver.capacities());
  const ad::NodeId over =
      ad::apply_activation(tape, slack, config.activation, config.activation_alpha);
  const ad::NodeId total = ad::combine(
      tape,
      {ad::weighted_sum(tape, over), ad::weighted_sum(tape, eff, r.turns),
       ad::weighted_sum(tape, eff, r.wirelength)},
      {config.weight_overflow,
       config.weight_via * std::sqrt(static_cast<float>(fx.design().grid().layer_count())),
       config.weight_wirelength});
  tape.backward(total);
  std::vector<double> grad(np + nt);
  std::copy(tape.grad(pl).begin(), tape.grad(pl).end(), grad.begin());
  std::copy(tape.grad(tl).begin(), tape.grad(tl).end(),
            grad.begin() + static_cast<std::ptrdiff_t>(np));

  const auto result = ad::grad_check(with_params, params, grad, 1e-3, 5e-3, 2e-2);
  EXPECT_TRUE(result.ok) << "max_abs=" << result.max_abs_err;
}

class ActivationSweep : public ::testing::TestWithParam<ad::Activation> {};

TEST_P(ActivationSweep, TrainsAndExtractsValidSolution) {
  auto fx = ConflictFixture::make();
  DgrConfig config = fast_config();
  config.activation = GetParam();
  config.iterations = 150;
  DgrSolver solver(fx.forest(), fx.cap, config);
  solver.train();
  const eval::RouteSolution sol = solver.extract();
  EXPECT_TRUE(sol.connects_all_pins());
  EXPECT_EQ(sol.nets.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(All, ActivationSweep,
                         ::testing::Values(ad::Activation::kReLU, ad::Activation::kSigmoid,
                                           ad::Activation::kLeakyReLU, ad::Activation::kExp,
                                           ad::Activation::kCELU));

TEST(Extract, EveryChosenPathBelongsToChosenTree) {
  design::IspdLikeParams p;
  p.num_nets = 60;
  p.grid_w = 20;
  p.grid_h = 20;
  const design::Design d = design::generate_ispd_like(p, 5);
  const auto cap = d.capacities();
  dag::ForestOptions fopts;
  fopts.tree.trunk_topology = true;
  const dag::DagForest forest = dag::DagForest::build(d, fopts);
  DgrConfig config = fast_config();
  config.iterations = 60;
  DgrSolver solver(forest, cap, config);
  solver.train();
  const eval::RouteSolution sol = solver.extract();
  ASSERT_EQ(sol.nets.size(), forest.net_count());
  EXPECT_TRUE(sol.connects_all_pins());
  // Each routed net's path count equals one of its tree candidates' subnet
  // count (a consistent whole-tree selection).
  for (std::size_t n = 0; n < forest.net_count(); ++n) {
    bool matches_some_tree = false;
    const auto& offs = forest.net_tree_offsets();
    for (auto t = offs[n]; t < offs[n + 1]; ++t) {
      const auto& tc = forest.trees()[static_cast<std::size_t>(t)];
      if (sol.nets[n].paths.size() ==
          static_cast<std::size_t>(tc.subnet_end - tc.subnet_begin)) {
        matches_some_tree = true;
      }
    }
    EXPECT_TRUE(matches_some_tree) << "net " << n;
  }
}

TEST(Extract, TopPWidensCandidateSet) {
  // With top_p ~ 0 extraction must take the argmax; with top_p ~ 1 it may
  // deviate to dodge congestion. On the conflict fixture a wide top-p and an
  // untrained solver should still produce zero overflow thanks to the greedy
  // commit.
  auto fx = ConflictFixture::make();
  DgrConfig config;
  config.iterations = 0;  // untrained: probabilities near uniform
  config.top_p = 0.999f;
  DgrSolver solver(fx.forest(), fx.cap, config);
  const eval::RouteSolution sol = solver.extract();
  const eval::Metrics m = eval::compute_metrics(sol, fx.cap, 0.0f);
  EXPECT_EQ(m.overflow_edges, 0);
}

TEST(CostBreakdown, ComponentsAddUp) {
  auto fx = ConflictFixture::make();
  DgrConfig config;
  DgrSolver solver(fx.forest(), fx.cap, config);
  const CostBreakdown c = solver.evaluate(1.0f);
  const double recon = config.weight_overflow * c.overflow +
                       config.weight_via * c.via + config.weight_wirelength * c.wirelength;
  EXPECT_NEAR(c.total, recon, std::abs(recon) * 1e-4 + 1e-3);
  // Expected wirelength of two 10-long diagonals.
  EXPECT_NEAR(c.wirelength, 20.0, 1e-3);
}


/// Full training run of one solver at a given worker count; returns everything
/// the determinism contract covers (per-iteration costs, final params, routes).
struct TrainOutcome {
  std::vector<double> cost_history;
  std::vector<float> logits;
  eval::RouteSolution solution;
};

TrainOutcome train_at_workers(const dag::DagForest& forest, const std::vector<float>& cap,
                              const DgrConfig& config, std::size_t workers) {
  util::set_worker_count(workers);
  DgrSolver solver(forest, cap, config);
  TrainOutcome out;
  out.cost_history = solver.train().cost_history;
  out.logits = solver.logits();
  out.solution = solver.extract();
  return out;
}

TEST(DgrSolver, BitwiseDeterministicAcrossWorkerCounts) {
  // The ISSUE's headline contract: every parallel kernel in the training loop
  // partitions work by (begin, end, grain) only, so thread count must not
  // change a single bit of the trajectory. Run the full train()+extract()
  // pipeline at 1/2/4/default workers and require bitwise-equal histories,
  // parameters, and routes.
  design::IspdLikeParams p;
  p.num_nets = 80;
  p.grid_w = p.grid_h = 16;
  const design::Design d = design::generate_ispd_like(p, 11);
  const auto cap = d.capacities();
  const dag::DagForest forest = dag::DagForest::build(d, {});
  DgrConfig config = fast_config();
  config.iterations = 40;

  const TrainOutcome ref = train_at_workers(forest, cap, config, 1);
  ASSERT_EQ(ref.cost_history.size(), 40u);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    const TrainOutcome got = train_at_workers(forest, cap, config, workers);
    ASSERT_EQ(got.cost_history.size(), ref.cost_history.size()) << workers;
    for (std::size_t i = 0; i < ref.cost_history.size(); ++i) {
      EXPECT_EQ(got.cost_history[i], ref.cost_history[i])
          << "workers=" << workers << " iter=" << i;
    }
    ASSERT_EQ(got.logits.size(), ref.logits.size()) << workers;
    for (std::size_t i = 0; i < ref.logits.size(); ++i) {
      EXPECT_EQ(got.logits[i], ref.logits[i]) << "workers=" << workers << " logit=" << i;
    }
    ASSERT_EQ(got.solution.nets.size(), ref.solution.nets.size()) << workers;
    for (std::size_t n = 0; n < ref.solution.nets.size(); ++n) {
      ASSERT_EQ(got.solution.nets[n].paths.size(), ref.solution.nets[n].paths.size())
          << "workers=" << workers << " net=" << n;
      for (std::size_t k = 0; k < ref.solution.nets[n].paths.size(); ++k) {
        EXPECT_EQ(got.solution.nets[n].paths[k].waypoints,
                  ref.solution.nets[n].paths[k].waypoints)
            << "workers=" << workers << " net=" << n << " path=" << k;
      }
    }
  }
  util::set_worker_count(0);
}

TEST(DgrSolver, FusedAndUnfusedForwardAgree) {
  // The fused kernels must compute the same objective as the reference graph
  // (only the overflow reduction order differs: block partials vs serial).
  auto fx = ConflictFixture::make();
  DgrConfig fused = fast_config();
  fused.fused_kernels = true;
  DgrConfig unfused = fused;
  unfused.fused_kernels = false;
  DgrSolver a(fx.forest(), fx.cap, fused);
  DgrSolver b(fx.forest(), fx.cap, unfused);
  const CostBreakdown ca = a.evaluate(1.0f);
  const CostBreakdown cb = b.evaluate(1.0f);
  EXPECT_NEAR(ca.total, cb.total, 1e-5 + 1e-6 * std::abs(cb.total));
  EXPECT_NEAR(ca.overflow, cb.overflow, 1e-5 + 1e-6 * std::abs(cb.overflow));
  EXPECT_NEAR(ca.wirelength, cb.wirelength, 1e-5);
  EXPECT_NEAR(ca.via, cb.via, 1e-5);
  // And both modes train to the same qualitative solution.
  a.train();
  b.train();
  EXPECT_TRUE(a.extract().connects_all_pins());
  EXPECT_TRUE(b.extract().connects_all_pins());
}

TEST(DgrSolver, AdaptiveForestTrainsAndExtracts) {
  design::IspdLikeParams p;
  p.num_nets = 200;
  p.grid_w = p.grid_h = 20;
  p.tracks_per_layer = 2;
  p.hotspot_affinity = 0.7;
  const design::Design d = design::generate_ispd_like(p, 33);
  const auto cap = d.capacities();
  dag::ForestOptions fopts;
  fopts.adaptive_expansion = true;
  const dag::DagForest forest = dag::DagForest::build(d, fopts);
  DgrConfig config = fast_config();
  config.iterations = 100;
  DgrSolver solver(forest, cap, config);
  solver.train();
  const eval::RouteSolution sol = solver.extract();
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(DgrSolver, ReusedTapeMatchesFreshTapeAcrossWorkerCounts) {
  // The arena-reuse contract: resetting and re-recording into the same tape
  // must reproduce a fresh-tape-per-iteration solve bit for bit, at every
  // worker count. This is what licenses reuse_tape as the default.
  design::IspdLikeParams p;
  p.num_nets = 60;
  p.grid_w = p.grid_h = 14;
  const design::Design d = design::generate_ispd_like(p, 7);
  const auto cap = d.capacities();
  const dag::DagForest forest = dag::DagForest::build(d, {});
  DgrConfig reused = fast_config();
  reused.iterations = 30;
  reused.reuse_tape = true;
  DgrConfig fresh = reused;
  fresh.reuse_tape = false;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const TrainOutcome a = train_at_workers(forest, cap, reused, workers);
    const TrainOutcome b = train_at_workers(forest, cap, fresh, workers);
    ASSERT_EQ(a.cost_history.size(), b.cost_history.size()) << workers;
    for (std::size_t i = 0; i < a.cost_history.size(); ++i) {
      EXPECT_EQ(a.cost_history[i], b.cost_history[i])
          << "workers=" << workers << " iter=" << i;
    }
    ASSERT_EQ(a.logits.size(), b.logits.size()) << workers;
    for (std::size_t i = 0; i < a.logits.size(); ++i) {
      EXPECT_EQ(a.logits[i], b.logits[i]) << "workers=" << workers << " logit=" << i;
    }
  }
  util::set_worker_count(0);
}

TEST(DgrSolver, ArenaRegrowthIsZeroAfterWarmup) {
  // Zero-malloc steady state: the reused tape's arenas grow during the first
  // recording, may top up once more while per-op scratch reaches its final
  // shape, and must never grow again. The tape counts capacity-exceeding
  // growth on a warm (reset at least once) tape in obs `ad.arena_regrowth`.
  auto fx = ConflictFixture::make();
  DgrConfig config = fast_config();
  config.iterations = 50;
  DgrSolver solver(fx.forest(), fx.cap, config);
  obs::Counter& regrowth = obs::metrics().counter("ad.arena_regrowth");

  solver.train_step(0);
  solver.train_step(1);
  regrowth.reset();  // warm-up over: from here on, any regrowth is a bug
  for (int i = 2; i < 50; ++i) solver.train_step(i);
  EXPECT_EQ(regrowth.value(), 0);
}

TEST(BatchedDgrSolver, MatchesSoloSolversBitwise) {
  // One shared tape, N designs, one backward_multi, one Adam step over the
  // concatenated parameters — and every per-design trajectory must still be
  // bitwise-identical to a solo DgrSolver with that design's seed.
  design::IspdLikeParams p1;
  p1.num_nets = 40;
  p1.grid_w = p1.grid_h = 12;
  const design::Design d1 = design::generate_ispd_like(p1, 21);
  design::IspdLikeParams p2;
  p2.num_nets = 25;
  p2.grid_w = p2.grid_h = 10;
  const design::Design d2 = design::generate_ispd_like(p2, 22);
  const dag::DagForest f1 = dag::DagForest::build(d1, {});
  const dag::DagForest f2 = dag::DagForest::build(d2, {});

  DgrConfig config = fast_config();
  config.iterations = 25;

  BatchedDgrSolver batch(config);
  ASSERT_EQ(batch.add_design(f1, d1.capacities(), 101), 0u);
  ASSERT_EQ(batch.add_design(f2, d2.capacities(), 202), 1u);
  batch.train();

  const dag::DagForest* forests[] = {&f1, &f2};
  const design::Design* designs[] = {&d1, &d2};
  const std::uint64_t seeds[] = {101, 202};
  for (std::size_t i = 0; i < 2; ++i) {
    DgrConfig solo_config = config;
    solo_config.seed = seeds[i];
    DgrSolver solo(*forests[i], designs[i]->capacities(), solo_config);
    for (int it = 0; it < config.iterations; ++it) solo.train_step(it);

    const std::span<const float> bp = batch.params(i);
    const std::vector<float>& sp = solo.logits();
    ASSERT_EQ(bp.size(), sp.size()) << "design " << i;
    for (std::size_t k = 0; k < sp.size(); ++k) {
      EXPECT_EQ(bp[k], sp[k]) << "design " << i << " param " << k;
    }
    // Final-step gradients must agree too (the grads feed warm-start reuse).
    EXPECT_EQ(batch.last_breakdown(i).total, solo.last_breakdown().total)
        << "design " << i;
    // And the discrete solutions they induce.
    const eval::RouteSolution bs = batch.extract(i);
    const eval::RouteSolution ss = solo.extract();
    ASSERT_EQ(bs.nets.size(), ss.nets.size()) << "design " << i;
    for (std::size_t n = 0; n < ss.nets.size(); ++n) {
      ASSERT_EQ(bs.nets[n].paths.size(), ss.nets[n].paths.size())
          << "design " << i << " net " << n;
      for (std::size_t k = 0; k < ss.nets[n].paths.size(); ++k) {
        EXPECT_EQ(bs.nets[n].paths[k].waypoints, ss.nets[n].paths[k].waypoints)
            << "design " << i << " net " << n << " path " << k;
      }
    }
  }
}

TEST(BatchedDgrSolver, GradientsMatchPerDesignSoloTapes) {
  // Single-step variant pinning the backward_multi contract directly: the
  // gradient slab each design reads out of the shared grad arena equals the
  // gradient a dedicated solo tape computes for it.
  auto fx = ConflictFixture::make();
  DgrConfig config = fast_config();
  config.iterations = 1;

  BatchedDgrSolver batch(config);
  batch.add_design(fx.forest(), fx.cap, config.seed);
  batch.add_design(fx.forest(), fx.cap, 77);
  batch.train_step(0);

  const std::uint64_t seeds[] = {config.seed, 77};
  for (std::size_t i = 0; i < 2; ++i) {
    DgrConfig solo_config = config;
    solo_config.seed = seeds[i];
    DgrSolver solo(fx.forest(), fx.cap, solo_config);
    solo.train_step(0);
    // Solo applied its Adam update; re-derive its step-0 gradient from the
    // batched slab sizes instead: compare post-step parameters, which are a
    // pure function of (init, grad) under elementwise Adam.
    const std::span<const float> bp = batch.params(i);
    const std::vector<float>& sp = solo.logits();
    ASSERT_EQ(bp.size(), sp.size());
    for (std::size_t k = 0; k < sp.size(); ++k) {
      EXPECT_EQ(bp[k], sp[k]) << "design " << i << " param " << k;
    }
    const std::span<const double> bg = batch.last_grads(i);
    ASSERT_EQ(bg.size(), sp.size());
    for (std::size_t k = 0; k < bg.size(); ++k) {
      EXPECT_TRUE(std::isfinite(bg[k])) << "design " << i << " grad " << k;
    }
  }
}

TEST(BatchedDgrSolver, RejectsLateAddAndBadIndices) {
  auto fx = ConflictFixture::make();
  DgrConfig config = fast_config();
  BatchedDgrSolver batch(config);
  batch.add_design(fx.forest(), fx.cap, 1);
  batch.train_step(0);
  EXPECT_THROW(batch.add_design(fx.forest(), fx.cap, 2), std::logic_error);
  EXPECT_THROW(batch.params(5), std::out_of_range);
}

}  // namespace
}  // namespace dgr::core
