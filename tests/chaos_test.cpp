// Chaos suite (ctest -L chaos): every compiled-in fault-injection site,
// exercised at two or more plan seeds, must end in either full recovery
// (status OK, valid solution) or a typed Status — never a crash, hang, or
// silently wrong answer. Also locks down the determinism of the recovery
// paths: a divergence rollback replays bit-for-bit across worker counts.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "design/generator.hpp"
#include "design/io.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/validate.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace dgr {
namespace {

using util::fault::FaultPlan;
using util::fault::FaultSpec;
using util::fault::ScopedPlan;

design::Design chaos_design(std::uint64_t seed = 77) {
  design::IspdLikeParams p;
  p.name = "chaos_small";
  p.grid_w = p.grid_h = 12;
  p.num_nets = 60;
  p.layers = 4;
  p.tracks_per_layer = 3;
  return design::generate_ispd_like(p, seed);
}

pipeline::RouterOptions fast_options() {
  pipeline::RouterOptions o;
  o.dgr.iterations = 30;
  o.dgr.temperature_interval = 10;
  return o;
}

const char kValidDgrd[] =
    "dgrd 1\ndesign t\ngrid 4 4 2\nlayer H 2\nlayer V 2\n"
    "nets 1\nnet n0 2 0 0 3 3\nend\n";

#define SKIP_WITHOUT_HOOKS()                                    \
  if (!util::fault::compiled_in()) {                            \
    GTEST_SKIP() << "built with -DDGR_FAULT_INJECTION=OFF";     \
  }

// ---------------------------------------------------------------------------
// Harness semantics
// ---------------------------------------------------------------------------

TEST(FaultHarness, DisarmedSitesNeverFire) {
  SKIP_WITHOUT_HOOKS();
  util::fault::disarm();
  EXPECT_FALSE(util::fault::should_fire("core.loss"));
  EXPECT_FALSE(DGR_FAULT_POINT("core.loss"));
}

TEST(FaultHarness, DrawsReplayBitForBit) {
  SKIP_WITHOUT_HOOKS();
  const FaultPlan plan{123, {{"x.site", 0.5, -1}}};
  auto draw_pattern = [&](const FaultPlan& p) {
    ScopedPlan chaos(p);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(util::fault::should_fire("x.site"));
    return fired;
  };
  const std::vector<bool> a = draw_pattern(plan);
  const std::vector<bool> b = draw_pattern(plan);
  EXPECT_EQ(a, b);
  // A different seed draws a different pattern (64 coin flips).
  const std::vector<bool> c = draw_pattern(FaultPlan{456, {{"x.site", 0.5, -1}}});
  EXPECT_NE(a, c);
}

TEST(FaultHarness, MaxFiresCapsInjections) {
  SKIP_WITHOUT_HOOKS();
  ScopedPlan chaos(FaultPlan{1, {{"x.capped", 1.0, 2}}});
  int fired = 0;
  for (int i = 0; i < 5; ++i) fired += util::fault::should_fire("x.capped") ? 1 : 0;
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(util::fault::hits("x.capped"), 5u);
  EXPECT_EQ(util::fault::fires("x.capped"), 2u);
}

// ---------------------------------------------------------------------------
// Parse boundary
// ---------------------------------------------------------------------------

TEST(Chaos, ParseFaultYieldsTypedStatus) {
  SKIP_WITHOUT_HOOKS();
  for (const std::uint64_t seed : {7ull, 99ull}) {
    ScopedPlan chaos(FaultPlan{seed, {{"io.parse", 1.0, -1}}});
    std::stringstream ss(kValidDgrd);
    const Result<design::Design> r = design::try_read_design(ss);
    ASSERT_FALSE(r.ok()) << "seed " << seed;
    EXPECT_EQ(r.status().code(), StatusCode::kFaultInjected);
    EXPECT_GE(util::fault::fires("io.parse"), 1u);
  }
}

// ---------------------------------------------------------------------------
// Kernel boundary: numeric-health sentinels + checkpoint rollback
// ---------------------------------------------------------------------------

TEST(Chaos, LossNanRollsBackAndRecovers) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  const dag::DagForest forest = dag::DagForest::build(d, {});
  core::DgrConfig config;
  config.iterations = 30;
  config.temperature_interval = 10;
  for (const std::uint64_t seed : {7ull, 99ull}) {
    ScopedPlan chaos(FaultPlan{seed, {{"core.loss", 1.0, 1}}});
    core::DgrSolver solver(forest, d.capacities(), config);
    const core::TrainStats stats = solver.train();
    EXPECT_GE(util::fault::fires("core.loss"), 1u) << "seed " << seed;
    EXPECT_EQ(stats.rollbacks, 1) << "seed " << seed;
    EXPECT_TRUE(stats.status.ok()) << stats.status.to_string();
    const eval::RouteSolution sol = solver.extract();
    EXPECT_TRUE(sol.connects_all_pins());
  }
}

TEST(Chaos, GradientNanRollbackIsBitwiseDeterministicAcrossWorkers) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  const dag::DagForest forest = dag::DagForest::build(d, {});
  core::DgrConfig config;
  config.iterations = 30;
  config.temperature_interval = 10;
  config.record_history = true;

  struct Outcome {
    std::vector<double> history;
    std::vector<float> logits;
    int rollbacks = 0;
    eval::RouteSolution solution;
  };
  auto run_at = [&](std::size_t workers) {
    util::set_worker_count(workers);
    // Re-arm per run so hit counters restart and the fault fires on the
    // same hit index every time.
    ScopedPlan chaos(FaultPlan{5, {{"core.grad", 1.0, 2}}});
    core::DgrSolver solver(forest, d.capacities(), config);
    Outcome out;
    const core::TrainStats stats = solver.train();
    out.history = stats.cost_history;
    out.rollbacks = stats.rollbacks;
    out.logits = solver.logits();
    out.solution = solver.extract();
    EXPECT_GE(util::fault::fires("core.grad"), 1u);
    return out;
  };

  const Outcome ref = run_at(1);
  EXPECT_EQ(ref.rollbacks, 2);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const Outcome got = run_at(workers);
    EXPECT_EQ(got.rollbacks, ref.rollbacks) << workers;
    ASSERT_EQ(got.history.size(), ref.history.size()) << workers;
    for (std::size_t i = 0; i < ref.history.size(); ++i) {
      EXPECT_EQ(got.history[i], ref.history[i]) << "workers=" << workers << " iter=" << i;
    }
    ASSERT_EQ(got.logits.size(), ref.logits.size()) << workers;
    for (std::size_t i = 0; i < ref.logits.size(); ++i) {
      EXPECT_EQ(got.logits[i], ref.logits[i]) << "workers=" << workers << " logit=" << i;
    }
    ASSERT_EQ(got.solution.nets.size(), ref.solution.nets.size()) << workers;
    for (std::size_t n = 0; n < ref.solution.nets.size(); ++n) {
      ASSERT_EQ(got.solution.nets[n].paths.size(), ref.solution.nets[n].paths.size());
      for (std::size_t k = 0; k < ref.solution.nets[n].paths.size(); ++k) {
        EXPECT_EQ(got.solution.nets[n].paths[k].waypoints,
                  ref.solution.nets[n].paths[k].waypoints)
            << "workers=" << workers << " net=" << n << " path=" << k;
      }
    }
  }
  util::set_worker_count(0);
}

TEST(Chaos, RollbackBudgetExhaustionDegradesToFallback) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  for (const std::uint64_t seed : {7ull, 99ull}) {
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);
    // Every gradient step sees a NaN: the rollback budget exhausts and the
    // pipeline must degrade to cugr2-lite through the registry.
    ScopedPlan chaos(FaultPlan{seed, {{"core.grad", 1.0, -1}}});
    pipeline::RouterOptions opts = fast_options();
    opts.dgr.max_rollbacks = 1;
    const pipeline::PipelineResult result = pipe.run("dgr", opts);
    EXPECT_TRUE(result.stats.degraded) << "seed " << seed;
    EXPECT_EQ(result.stats.router, "dgr");
    EXPECT_TRUE(result.stats.status.ok()) << result.stats.status.to_string();
    EXPECT_EQ(result.stats.counter("degraded"), 1.0);
    ASSERT_FALSE(result.solution.nets.empty());
    EXPECT_TRUE(result.solution.connects_all_pins());
    EXPECT_GT(result.metrics.wirelength, 0);
  }
}

// ---------------------------------------------------------------------------
// Stage and allocation boundaries
// ---------------------------------------------------------------------------

TEST(Chaos, AllocationFaultDegradesToFallback) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  for (const std::uint64_t seed : {7ull, 99ull}) {
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);
    ScopedPlan chaos(FaultPlan{seed, {{"pipeline.alloc", 1.0, 1}}});
    const pipeline::PipelineResult result = pipe.run("dgr", fast_options());
    EXPECT_GE(util::fault::fires("pipeline.alloc"), 1u);
    EXPECT_TRUE(result.stats.degraded) << "seed " << seed;
    EXPECT_TRUE(result.stats.status.ok()) << result.stats.status.to_string();
    ASSERT_FALSE(result.solution.nets.empty());
    EXPECT_TRUE(result.solution.connects_all_pins());
  }
}

TEST(Chaos, StageFaultDegradesToFallback) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  pipeline::RoutingContext ctx(d);
  pipeline::Pipeline pipe(ctx);
  ScopedPlan chaos(FaultPlan{3, {{"pipeline.stage", 1.0, 1}}});
  const pipeline::PipelineResult result = pipe.run("dgr", fast_options());
  EXPECT_TRUE(result.stats.degraded);
  EXPECT_TRUE(result.stats.status.ok()) << result.stats.status.to_string();
  EXPECT_GT(result.stats.stage_seconds("fallback_route"), 0.0);
  EXPECT_TRUE(result.solution.connects_all_pins());
}

TEST(Chaos, StageFaultWithoutFallbackSurfacesTypedStatus) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  pipeline::RoutingContext ctx(d);
  pipeline::PipelineOptions popts;
  popts.budgets.fallback_router.clear();  // degradation disabled
  pipeline::Pipeline pipe(ctx, popts);
  ScopedPlan chaos(FaultPlan{3, {{"pipeline.stage", 1.0, 1}}});
  const pipeline::PipelineResult result = pipe.run("dgr", fast_options());
  EXPECT_FALSE(result.stats.degraded);
  EXPECT_EQ(result.stats.status.code(), StatusCode::kFaultInjected);
  EXPECT_EQ(result.stats.router, "dgr");
}

// ---------------------------------------------------------------------------
// Validation gate
// ---------------------------------------------------------------------------

TEST(Chaos, ValidationFaultTriggersRepairAndRecovers) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  for (const std::uint64_t seed : {7ull, 99ull}) {
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);
    // The first validated net is (falsely) reported broken; the gate must
    // repair it and the re-validation must come back clean.
    ScopedPlan chaos(FaultPlan{seed, {{"pipeline.validate", 1.0, 1}}});
    const pipeline::PipelineResult result = pipe.run("cugr2-lite", fast_options());
    EXPECT_GE(util::fault::fires("pipeline.validate"), 1u);
    EXPECT_TRUE(result.stats.status.ok()) << result.stats.status.to_string();
    EXPECT_EQ(result.stats.repaired_nets, 1);
    EXPECT_TRUE(result.validation.status.ok());
    EXPECT_TRUE(result.solution.connects_all_pins());
  }
}

// ---------------------------------------------------------------------------
// Sweep: every injection point, two seeds, typed outcome or recovery
// ---------------------------------------------------------------------------

TEST(Chaos, EverySiteEndsInRecoveryOrTypedStatus) {
  SKIP_WITHOUT_HOOKS();
  const design::Design d = chaos_design();
  const std::vector<std::string> pipeline_sites = {
      "core.loss", "core.grad", "pipeline.alloc", "pipeline.stage", "pipeline.validate"};
  for (const std::uint64_t seed : {11ull, 42ull}) {
    for (const std::string& site : pipeline_sites) {
      ScopedPlan chaos(FaultPlan{seed, {{site, 1.0, 1}}});
      pipeline::RoutingContext ctx(d);
      pipeline::Pipeline pipe(ctx);
      const pipeline::PipelineResult result = pipe.run("dgr", fast_options());
      EXPECT_GE(util::fault::fires(site), 1u) << site << " seed " << seed;
      if (result.stats.status.ok()) {
        // Recovery: the solution must be genuinely usable.
        ASSERT_FALSE(result.solution.nets.empty()) << site;
        EXPECT_TRUE(result.solution.connects_all_pins()) << site;
      } else {
        EXPECT_NE(result.stats.status.code(), StatusCode::kOk) << site;
        EXPECT_FALSE(result.stats.status.message().empty()) << site;
      }
    }
    // The parse boundary, driven separately from the routing pipeline.
    ScopedPlan chaos(FaultPlan{seed, {{"io.parse", 1.0, 1}}});
    std::stringstream ss(kValidDgrd);
    const Result<design::Design> r = design::try_read_design(ss);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFaultInjected);
  }
}

}  // namespace
}  // namespace dgr
