#include <gtest/gtest.h>

#include "rsmt/builder.hpp"
#include "rsmt/exact.hpp"
#include "rsmt/one_steiner.hpp"
#include "rsmt/salt.hpp"
#include "rsmt/steiner_tree.hpp"
#include "util/rng.hpp"

namespace dgr::rsmt {
namespace {

using geom::Point;

std::vector<Point> random_pins(util::Rng& rng, std::size_t count, int span) {
  std::vector<Point> pins;
  while (pins.size() < count) {
    const Point p{static_cast<geom::Coord>(rng.uniform_int(0, span)),
                  static_cast<geom::Coord>(rng.uniform_int(0, span))};
    if (std::find(pins.begin(), pins.end(), p) == pins.end()) pins.push_back(p);
  }
  return pins;
}

// ---------------------------------------------------------------------------
// Manhattan MST
// ---------------------------------------------------------------------------

TEST(Mst, TwoPinsIsDirectEdge) {
  const SteinerTree t = manhattan_mst({{0, 0}, {3, 4}});
  EXPECT_TRUE(t.is_spanning_tree());
  EXPECT_EQ(t.length(), 7);
  EXPECT_EQ(t.edges.size(), 1u);
}

TEST(Mst, SinglePinHasNoEdges) {
  const SteinerTree t = manhattan_mst({{5, 5}});
  EXPECT_TRUE(t.is_spanning_tree());
  EXPECT_EQ(t.length(), 0);
}

TEST(Mst, CollinearPinsChain) {
  const SteinerTree t = manhattan_mst({{0, 0}, {10, 0}, {4, 0}, {7, 0}});
  EXPECT_TRUE(t.is_spanning_tree());
  EXPECT_EQ(t.length(), 10);  // chain along the line
}

TEST(Mst, KnownSquareCost) {
  // Unit square: MST = 3 edges of length 1... (Manhattan) corners:
  const SteinerTree t = manhattan_mst({{0, 0}, {1, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(t.length(), 3);
}

// ---------------------------------------------------------------------------
// SteinerTree structure
// ---------------------------------------------------------------------------

TEST(SteinerTree, SpanningTreeDetectsCycle) {
  SteinerTree t;
  t.nodes = {{0, 0}, {1, 0}, {1, 1}};
  t.pin_count = 3;
  t.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_FALSE(t.is_spanning_tree());
}

TEST(SteinerTree, SpanningTreeDetectsDisconnection) {
  SteinerTree t;
  t.nodes = {{0, 0}, {1, 0}, {5, 5}, {6, 5}};
  t.pin_count = 4;
  t.edges = {{0, 1}, {2, 3}};
  EXPECT_FALSE(t.is_spanning_tree());  // |E| != |V|-1
}

TEST(SteinerTree, CanonicalEdgesIgnoreOrientationAndOrder) {
  SteinerTree a, b;
  a.nodes = {{0, 0}, {2, 0}, {2, 2}};
  a.pin_count = 3;
  a.edges = {{0, 1}, {1, 2}};
  b.nodes = {{2, 2}, {2, 0}, {0, 0}};
  b.pin_count = 3;
  b.edges = {{1, 0}, {2, 1}};
  EXPECT_EQ(a.canonical_edges(), b.canonical_edges());
}

TEST(SteinerTree, SimplifyRemovesSteinerLeaf) {
  SteinerTree t;
  t.nodes = {{0, 0}, {4, 0}, {2, 0}, {2, 3}};  // last two are Steiner
  t.pin_count = 2;
  t.edges = {{0, 2}, {2, 1}, {2, 3}};  // (2,3) dangles
  t.simplify();
  EXPECT_TRUE(t.is_spanning_tree());
  EXPECT_EQ(t.length(), 4);
  EXPECT_EQ(t.nodes.size(), 2u);  // collinear degree-2 Steiner also spliced
}

TEST(SteinerTree, SimplifyKeepsBendSteinerNode) {
  SteinerTree t;
  t.nodes = {{0, 0}, {4, 3}, {4, 0}};  // Steiner at the corner
  t.pin_count = 2;
  t.edges = {{0, 2}, {2, 1}};
  const std::int64_t len = t.length();
  t.simplify();
  // (4,0) is on a shortest path 0->1, so splicing is allowed and lossless...
  EXPECT_EQ(t.length(), len);
  EXPECT_TRUE(t.is_spanning_tree());
}

TEST(SteinerTree, SimplifyKeepsNonShortestBend) {
  SteinerTree t;
  t.nodes = {{0, 0}, {4, 0}, {2, 3}};  // detour bend above the line
  t.pin_count = 2;
  t.edges = {{0, 2}, {2, 1}};
  t.simplify();
  // Splicing would shorten the tree (change geometry) -> must keep the node.
  EXPECT_EQ(t.nodes.size(), 3u);
  EXPECT_EQ(t.length(), 10);
}

TEST(SteinerTree, SimplifyMergesCoincidentNodes) {
  SteinerTree t;
  t.nodes = {{0, 0}, {3, 0}, {3, 0}};  // Steiner node on top of pin 1
  t.pin_count = 2;
  t.edges = {{0, 2}, {2, 1}};
  t.simplify();
  EXPECT_TRUE(t.is_spanning_tree());
  EXPECT_EQ(t.nodes.size(), 2u);
  EXPECT_EQ(t.length(), 3);
}

// ---------------------------------------------------------------------------
// Exact RSMT
// ---------------------------------------------------------------------------

TEST(ExactRsmt, ThreePinLShape) {
  // Median point (1,1)... pins forming an L: Steiner point saves nothing.
  const SteinerTree t = exact_rsmt({{0, 0}, {0, 2}, {2, 0}});
  EXPECT_TRUE(t.is_spanning_tree());
  EXPECT_EQ(t.length(), 4);
}

TEST(ExactRsmt, ThreePinSteinerSaves) {
  // Classic Y: pins (0,0), (4,0), (2,3); Steiner at (2,0) gives 4+3=7.
  const SteinerTree t = exact_rsmt({{0, 0}, {4, 0}, {2, 3}});
  EXPECT_EQ(t.length(), 7);
  // MST would be 7+... check it is at most MST.
  EXPECT_LE(t.length(), manhattan_mst_length({{0, 0}, {4, 0}, {2, 3}}));
}

TEST(ExactRsmt, FourPinCross) {
  // Pins at the 4 arms of a cross; optimal joins through the centre: len 8.
  const SteinerTree t = exact_rsmt({{2, 0}, {2, 4}, {0, 2}, {4, 2}});
  EXPECT_EQ(t.length(), 8);
  EXPECT_LT(t.length(), manhattan_mst_length({{2, 0}, {2, 4}, {0, 2}, {4, 2}}));
}

TEST(ExactRsmt, FourPinSquareNeedsTwoSteiner) {
  // 2x2 square corners: RSMT length 6 (an 'H'), MST length 6 too (Manhattan).
  const SteinerTree t = exact_rsmt({{0, 0}, {2, 0}, {0, 2}, {2, 2}});
  EXPECT_EQ(t.length(), 6);
}

TEST(ExactRsmt, MatchesHpwlForTwoPins) {
  const SteinerTree t = exact_rsmt({{1, 1}, {6, 4}});
  EXPECT_EQ(t.length(), 8);
}

TEST(ExactRsmt, RejectsTooManyPins) {
  std::vector<Point> pins;
  for (int i = 0; i < 7; ++i) pins.push_back({static_cast<geom::Coord>(i), 0});
  EXPECT_THROW(exact_rsmt(pins), std::invalid_argument);
}

class ExactRsmtRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactRsmtRandom, BoundsHold) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const std::vector<Point> pins = random_pins(rng, n, 12);
    const SteinerTree t = exact_rsmt(pins);
    EXPECT_TRUE(t.is_spanning_tree());
    const auto hpwl = geom::Rect::bounding_box(pins).hpwl();
    EXPECT_GE(t.length(), hpwl);
    EXPECT_LE(t.length(), manhattan_mst_length(pins));
    // Every pin present among nodes.
    for (const Point& pin : pins) {
      EXPECT_NE(std::find(t.nodes.begin(), t.nodes.end(), pin), t.nodes.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRsmtRandom, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Iterated 1-Steiner
// ---------------------------------------------------------------------------

TEST(OneSteiner, NeverWorseThanMst) {
  util::Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const std::vector<Point> pins =
        random_pins(rng, 4 + static_cast<std::size_t>(rng.uniform_int(0, 8)), 30);
    const SteinerTree t = iterated_one_steiner(pins);
    EXPECT_TRUE(t.is_spanning_tree());
    EXPECT_LE(t.length(), manhattan_mst_length(pins));
    EXPECT_GE(t.length(), geom::Rect::bounding_box(pins).hpwl());
  }
}

TEST(OneSteiner, FindsTheCrossSteinerPoint) {
  const SteinerTree t = iterated_one_steiner({{2, 0}, {2, 4}, {0, 2}, {4, 2}});
  EXPECT_EQ(t.length(), 8);
}

class OneSteinerVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneSteinerVsExact, CloseToOptimal) {
  util::Rng rng(GetParam() * 1000 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Point> pins =
        random_pins(rng, 4 + static_cast<std::size_t>(rng.uniform_int(0, 1)), 10);
    const std::int64_t opt = exact_rsmt_length(pins);
    const std::int64_t heur = iterated_one_steiner(pins).length();
    EXPECT_GE(heur, opt);
    // Kahng-Robins is within a few percent of optimum; on these tiny nets it
    // should be within 10%.
    EXPECT_LE(static_cast<double>(heur), 1.10 * static_cast<double>(opt) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneSteinerVsExact, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// RsmtBuilder dispatch (FLUTE stand-in)
// ---------------------------------------------------------------------------

TEST(Builder, HandlesDuplicatesAndSingletons) {
  RsmtBuilder builder;
  const SteinerTree t1 = builder.build({{3, 3}, {3, 3}});
  EXPECT_TRUE(t1.is_spanning_tree());
  EXPECT_EQ(t1.length(), 0);
  const SteinerTree t2 = builder.build({{3, 3}});
  EXPECT_EQ(t2.node_count(), 1u);
}

class BuilderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BuilderSweep, ValidTreeWithBounds) {
  const std::size_t pins_count = GetParam();
  util::Rng rng(pins_count * 31 + 7);
  RsmtBuilder builder;
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<Point> pins = random_pins(rng, pins_count, 60);
    const SteinerTree t = builder.build(pins);
    EXPECT_TRUE(t.is_spanning_tree()) << "pins=" << pins_count;
    EXPECT_EQ(t.pin_count, pins.size());
    for (std::size_t i = 0; i < pins.size(); ++i) {
      EXPECT_EQ(t.nodes[i], pins[i]);  // pins first, in input order
    }
    EXPECT_GE(t.length(), geom::Rect::bounding_box(pins).hpwl());
    // Partitioned builds may slightly exceed the global MST bound on the
    // largest nets; allow 15% headroom there, exact bound for small.
    const double mst = static_cast<double>(manhattan_mst_length(pins));
    const double slack = pins_count <= 16 ? 1.0 : 1.15;
    EXPECT_LE(static_cast<double>(t.length()), mst * slack);
  }
}

INSTANTIATE_TEST_SUITE_P(PinCounts, BuilderSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 12, 16, 24, 40, 80));


// ---------------------------------------------------------------------------
// SALT-lite shallow-light trees
// ---------------------------------------------------------------------------

TEST(Salt, RejectsBadArguments) {
  EXPECT_THROW(salt_tree({{0, 0}, {1, 1}}, {0.0, 0}), std::invalid_argument);
  EXPECT_THROW(salt_tree({{0, 0}, {1, 1}}, {1.0, 5}), std::invalid_argument);
}

TEST(Salt, TinyEpsilonApproachesStar) {
  // A long chain: MST is the chain (source-to-far-end path = full length);
  // epsilon ~ 0 forces shortcuts from the source.
  std::vector<Point> pins;
  for (int i = 0; i < 8; ++i) pins.push_back({static_cast<geom::Coord>(3 * i), 0});
  const SteinerTree t = salt_tree(pins, {0.01, 0});
  EXPECT_TRUE(t.is_spanning_tree());
  EXPECT_LE(radius_stretch(t, 0), 1.01 + 1e-9);
}

TEST(Salt, LargeEpsilonKeepsMst) {
  std::vector<Point> pins{{0, 0}, {5, 1}, {9, 0}, {13, 2}};
  const SteinerTree mst = manhattan_mst(pins);
  const SteinerTree t = salt_tree(pins, {100.0, 0});
  EXPECT_EQ(t.length(), mst.length());
}

class SaltSweep : public ::testing::TestWithParam<double> {};

TEST_P(SaltSweep, ShallownessBoundHolds) {
  const double eps = GetParam();
  util::Rng rng(std::hash<double>{}(eps));
  for (int trial = 0; trial < 15; ++trial) {
    const std::vector<Point> pins = random_pins(rng, 10, 40);
    const SteinerTree t = salt_tree(pins, {eps, 0});
    EXPECT_TRUE(t.is_spanning_tree());
    // KRY guarantee: every node within (1+eps) of its direct distance.
    EXPECT_LE(radius_stretch(t, 0), 1.0 + eps + 1e-9) << "eps=" << eps;
    // Lightness never below the MST (it IS a spanning tree over the pins).
    EXPECT_GE(t.length(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, SaltSweep, ::testing::Values(0.1, 0.5, 1.0, 2.0));

TEST(Salt, SmallerEpsilonNeverLongerRadius) {
  util::Rng rng(99);
  const std::vector<Point> pins = random_pins(rng, 12, 50);
  const SteinerTree shallow = salt_tree(pins, {0.1, 0});
  const SteinerTree light = salt_tree(pins, {3.0, 0});
  EXPECT_LE(radius_stretch(shallow, 0), radius_stretch(light, 0) + 1e-9);
  EXPECT_LE(light.length(), shallow.length());  // lightness trade-off
}

}  // namespace
}  // namespace dgr::rsmt
