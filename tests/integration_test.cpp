// End-to-end integration tests: the full DGR pipeline against the exact ILP
// oracle (the Table 1 claim at test scale), against the sequential baselines
// on congested cases (the Table 2/3 claim in miniature), and through the
// complete post-processing stack.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/solver.hpp"
#include "design/generator.hpp"
#include "design/io.hpp"
#include "eval/metrics.hpp"
#include "ilp/routing_ilp.hpp"
#include "post/layer_assign.hpp"
#include "post/maze_refine.hpp"
#include "routers/cugr2lite.hpp"
#include "util/log.hpp"

namespace dgr {
namespace {

struct Table1Case {
  std::unique_ptr<design::Design> design;
  std::vector<float> cap;
  std::unique_ptr<dag::DagForest> forest;
};

Table1Case make_case(int grid, int cap_val, int nets, int box, std::uint64_t seed) {
  design::Table1Params params;
  params.grid_w = params.grid_h = grid;
  params.capacity = cap_val;
  params.num_nets = nets;
  params.box_size = box;
  auto inst = design::make_table1_instance(params, seed);
  Table1Case c;
  c.design = std::make_unique<design::Design>(std::move(inst.design));
  c.cap = std::move(inst.capacities);
  dag::ForestOptions fopts;
  fopts.tree.congestion_shifted = false;
  fopts.via_demand_beta = 0.0f;
  c.forest = std::make_unique<dag::DagForest>(dag::DagForest::build(*c.design, fopts));
  return c;
}

/// DGR configured for the Table 1 protocol: ReLU overflow objective only,
/// argmax extraction (top_p below any single probability).
core::DgrConfig table1_config(int iters = 400) {
  core::DgrConfig config;
  config.activation = ad::Activation::kReLU;
  config.weight_overflow = 1.0f;
  config.weight_wirelength = 0.0f;  // all L candidates have equal WL anyway
  config.weight_via = 0.0f;
  config.iterations = iters;
  config.temperature_interval = iters / 10;
  return config;
}

class DgrMatchesIlp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DgrMatchesIlp, OnSmallTable1Instances) {
  Table1Case c = make_case(12, 1, 10, 5, GetParam());
  // Exact optimum.
  ilp::MilpOptions mopts;
  mopts.time_limit_seconds = 60.0;
  const ilp::RoutingIlpResult ilp_result = ilp::solve_routing_ilp(*c.forest, c.cap, mopts);
  ASSERT_EQ(ilp_result.milp.status, ilp::LpStatus::kOptimal);

  // DGR.
  core::DgrSolver solver(*c.forest, c.cap, table1_config());
  solver.train();
  const eval::RouteSolution sol = solver.extract();
  EXPECT_TRUE(sol.connects_all_pins());
  const double dgr_overflow = sol.demand(0.0f).total_overflow(c.cap);

  // The paper's Table 1 shows DGR matching ILP on these instances; allow a
  // whisker of slack for the stochastic optimiser at test iteration counts.
  EXPECT_LE(dgr_overflow, ilp_result.overflow + 1.0)
      << "seed " << GetParam() << ": DGR " << dgr_overflow << " vs ILP "
      << ilp_result.overflow;
  EXPECT_GE(dgr_overflow, ilp_result.overflow - 1e-9);  // ILP is a true lower bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, DgrMatchesIlp, ::testing::Values(1, 2, 3, 4, 5));

TEST(Integration, DgrBeatsGreedyOnConflictLadder) {
  // N nets stacked on the same diagonal with capacity N/2: any coordinated
  // solver splits them evenly between the two L-shapes; an uncoordinated
  // argmax-of-random would overflow. DGR must find (near-)zero overflow.
  grid::GCellGrid grid = grid::GCellGrid::uniform(8, 8, 2, 3);
  std::vector<design::Net> nets;
  for (int i = 0; i < 6; ++i) {
    nets.push_back({"n" + std::to_string(i), {{0, 0}, {7, 7}}});
  }
  auto d = std::make_unique<design::Design>("ladder", std::move(grid), std::move(nets));
  std::vector<float> cap(static_cast<std::size_t>(d->grid().edge_count()), 3.0f);
  dag::ForestOptions fopts;
  fopts.tree.congestion_shifted = false;
  fopts.via_demand_beta = 0.0f;
  const dag::DagForest forest = dag::DagForest::build(*d, fopts);
  core::DgrConfig config = table1_config(500);
  core::DgrSolver solver(forest, cap, config);
  solver.train();
  const eval::RouteSolution sol = solver.extract();
  EXPECT_DOUBLE_EQ(sol.demand(0.0f).total_overflow(cap), 0.0);
}

TEST(Integration, DgrCompetitiveWithCugr2LiteOnCongestedCase) {
  design::IspdLikeParams p;
  p.name = "mini_ispd19";
  p.grid_w = p.grid_h = 24;
  p.num_nets = 500;
  p.layers = 5;
  p.tracks_per_layer = 2;
  p.hotspots = 2;
  p.hotspot_affinity = 0.65;
  const design::Design d = design::generate_ispd_like(p, 909);
  const auto cap = d.capacities();

  routers::Cugr2Lite baseline(d, cap);
  const eval::Metrics mb = eval::compute_metrics(baseline.route(), cap);

  const dag::DagForest forest = dag::DagForest::build(d, {});
  core::DgrConfig config;
  config.iterations = 300;
  config.temperature_interval = 60;
  core::DgrSolver solver(forest, cap, config);
  solver.train();
  eval::RouteSolution sol = solver.extract();
  post::maze_refine(sol, cap);
  const eval::Metrics md = eval::compute_metrics(sol, cap);

  // The paper's headline: DGR mitigates overflow relative to CUGR2. At test
  // scale we assert it is at least competitive (<= baseline + small slack).
  EXPECT_LE(md.overflow_edges, mb.overflow_edges + 3)
      << "DGR " << md.overflow_edges << " vs CUGR2-lite " << mb.overflow_edges;
  EXPECT_TRUE(sol.connects_all_pins());
}

TEST(Integration, FullPipelineProducesThreeDMetrics) {
  design::IspdLikeParams p;
  p.num_nets = 200;
  p.grid_w = p.grid_h = 20;
  p.layers = 5;
  const design::Design d = design::generate_ispd_like(p, 31);
  const auto cap = d.capacities();
  const dag::DagForest forest = dag::DagForest::build(d, {});
  core::DgrConfig config;
  config.iterations = 120;
  config.temperature_interval = 30;
  core::DgrSolver solver(forest, cap, config);
  const core::TrainStats ts = solver.train();
  EXPECT_GT(ts.tape_bytes, 0u);
  eval::RouteSolution sol = solver.extract();
  post::maze_refine(sol, cap);
  const post::LayerAssignment la = post::assign_layers(sol, cap);
  EXPECT_GT(la.via_count, 0);
  const eval::Metrics m = eval::compute_metrics(sol, cap);
  EXPECT_GT(m.wirelength, 0);
  EXPECT_GE(eval::weighted_overflow(sol, cap), 0.0);
}

TEST(Integration, SavedDesignReproducesRoutingRun) {
  design::IspdLikeParams p;
  p.num_nets = 80;
  p.grid_w = p.grid_h = 16;
  const design::Design d = design::generate_ispd_like(p, 13);
  std::stringstream ss;
  design::write_design(ss, d);
  const design::Design r = design::read_design(ss);

  auto run = [](const design::Design& dd) {
    const auto cap = dd.capacities();
    const dag::DagForest forest = dag::DagForest::build(dd, {});
    core::DgrConfig config;
    config.iterations = 50;
    core::DgrSolver solver(forest, cap, config);
    solver.train();
    const eval::RouteSolution sol = solver.extract();
    return eval::compute_metrics(sol, cap);
  };
  const eval::Metrics a = run(d);
  const eval::Metrics b = run(r);
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(a.overflow_edges, b.overflow_edges);
  EXPECT_EQ(a.bends, b.bends);
}

TEST(Integration, SeedSpreadIsTightOnTable1Protocol) {
  // The paper reports DGR best == worst (to ~1e-5 relative) across 5 seeds on
  // the easy synthetic rows; assert a small absolute spread at test scale.
  Table1Case c = make_case(10, 2, 8, 4, 99);
  std::vector<double> results;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    core::DgrConfig config = table1_config(300);
    config.seed = seed;
    core::DgrSolver solver(*c.forest, c.cap, config);
    solver.train();
    results.push_back(solver.extract().demand(0.0f).total_overflow(c.cap));
  }
  const double spread = *std::max_element(results.begin(), results.end()) -
                        *std::min_element(results.begin(), results.end());
  EXPECT_LE(spread, 1.0);
}

}  // namespace
}  // namespace dgr
