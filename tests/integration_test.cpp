// End-to-end integration tests: the full DGR pipeline against the exact ILP
// oracle (the Table 1 claim at test scale), against the sequential baselines
// on congested cases (the Table 2/3 claim in miniature), and through the
// complete post-processing stack. All routers are constructed through the
// pipeline registry; the ILP oracle shares the context's forest/capacities.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "design/generator.hpp"
#include "design/io.hpp"
#include "ilp/routing_ilp.hpp"
#include "pipeline/adapters.hpp"
#include "pipeline/context.hpp"
#include "pipeline/pipeline.hpp"
#include "util/log.hpp"

namespace dgr {
namespace {

const pipeline::StagePlan kRouteOnly{.maze_refine = false, .layer_assign = false};

struct Table1Case {
  std::unique_ptr<design::Design> design;
  std::unique_ptr<pipeline::RoutingContext> ctx;
  std::unique_ptr<pipeline::Pipeline> pipe;
  dag::ForestOptions fopts;  ///< one L-shape per pair, no via demand
};

Table1Case make_case(int grid, int cap_val, int nets, int box, std::uint64_t seed) {
  design::Table1Params params;
  params.grid_w = params.grid_h = grid;
  params.capacity = cap_val;
  params.num_nets = nets;
  params.box_size = box;
  auto inst = design::make_table1_instance(params, seed);
  Table1Case c;
  c.design = std::make_unique<design::Design>(std::move(inst.design));
  pipeline::ContextOptions copts;
  copts.capacities = std::move(inst.capacities);
  copts.via_beta = 0.0f;
  c.ctx = std::make_unique<pipeline::RoutingContext>(*c.design, std::move(copts));
  c.pipe = std::make_unique<pipeline::Pipeline>(*c.ctx);
  c.fopts.tree.congestion_shifted = false;
  return c;
}

/// DGR configured for the Table 1 protocol: ReLU overflow objective only,
/// argmax extraction (top_p below any single probability).
core::DgrConfig table1_config(int iters = 400) {
  core::DgrConfig config;
  config.activation = ad::Activation::kReLU;
  config.weight_overflow = 1.0f;
  config.weight_wirelength = 0.0f;  // all L candidates have equal WL anyway
  config.weight_via = 0.0f;
  config.iterations = iters;
  config.temperature_interval = iters / 10;
  return config;
}

pipeline::RouterOptions table1_router_options(const Table1Case& c, int iters = 400) {
  pipeline::RouterOptions ro;
  ro.dgr = table1_config(iters);
  ro.forest = c.fopts;
  return ro;
}

class DgrMatchesIlp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DgrMatchesIlp, OnSmallTable1Instances) {
  Table1Case c = make_case(12, 1, 10, 5, GetParam());
  // Exact optimum, on the identical candidate forest the DGR run uses.
  ilp::MilpOptions mopts;
  mopts.time_limit_seconds = 60.0;
  const ilp::RoutingIlpResult ilp_result =
      ilp::solve_routing_ilp(c.ctx->forest(c.fopts), c.ctx->capacities(), mopts);
  ASSERT_EQ(ilp_result.milp.status, ilp::LpStatus::kOptimal);

  // DGR through the pipeline; the context's via_beta = 0 makes
  // metrics.total_overflow exactly the Table 1 objective.
  const pipeline::PipelineResult r =
      c.pipe->run("dgr", table1_router_options(c), kRouteOnly);
  EXPECT_TRUE(r.solution.connects_all_pins());
  const double dgr_overflow = r.metrics.total_overflow;

  // The paper's Table 1 shows DGR matching ILP on these instances; allow a
  // whisker of slack for the stochastic optimiser at test iteration counts.
  EXPECT_LE(dgr_overflow, ilp_result.overflow + 1.0)
      << "seed " << GetParam() << ": DGR " << dgr_overflow << " vs ILP "
      << ilp_result.overflow;
  EXPECT_GE(dgr_overflow, ilp_result.overflow - 1e-9);  // ILP is a true lower bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, DgrMatchesIlp, ::testing::Values(1, 2, 3, 4, 5));

TEST(Integration, DgrBeatsGreedyOnConflictLadder) {
  // N nets stacked on the same diagonal with capacity N/2: any coordinated
  // solver splits them evenly between the two L-shapes; an uncoordinated
  // argmax-of-random would overflow. DGR must find (near-)zero overflow.
  grid::GCellGrid grid = grid::GCellGrid::uniform(8, 8, 2, 3);
  std::vector<design::Net> nets;
  for (int i = 0; i < 6; ++i) {
    nets.push_back({"n" + std::to_string(i), {{0, 0}, {7, 7}}});
  }
  auto d = std::make_unique<design::Design>("ladder", std::move(grid), std::move(nets));
  pipeline::ContextOptions copts;
  copts.capacities.assign(static_cast<std::size_t>(d->grid().edge_count()), 3.0f);
  copts.via_beta = 0.0f;
  pipeline::RoutingContext ctx(*d, std::move(copts));
  pipeline::Pipeline pipe(ctx);
  pipeline::RouterOptions ro;
  ro.dgr = table1_config(500);
  ro.forest.tree.congestion_shifted = false;
  const pipeline::PipelineResult r = pipe.run("dgr", ro, kRouteOnly);
  EXPECT_DOUBLE_EQ(r.metrics.total_overflow, 0.0);
}

TEST(Integration, DgrCompetitiveWithCugr2LiteOnCongestedCase) {
  design::IspdLikeParams p;
  p.name = "mini_ispd19";
  p.grid_w = p.grid_h = 24;
  p.num_nets = 500;
  p.layers = 5;
  p.tracks_per_layer = 2;
  p.hotspots = 2;
  p.hotspot_affinity = 0.65;
  const design::Design d = design::generate_ispd_like(p, 909);
  pipeline::RoutingContext ctx(d);
  pipeline::Pipeline pipe(ctx);

  const pipeline::PipelineResult base = pipe.run("cugr2-lite", {}, kRouteOnly);

  pipeline::RouterOptions ro;
  ro.dgr.iterations = 300;
  ro.dgr.temperature_interval = 60;
  const pipeline::PipelineResult dgr_run = pipe.run(
      "dgr", ro, pipeline::StagePlan{.maze_refine = true, .layer_assign = false});

  // The paper's headline: DGR mitigates overflow relative to CUGR2. At test
  // scale we assert it is at least competitive (<= baseline + small slack).
  EXPECT_LE(dgr_run.metrics.overflow_edges, base.metrics.overflow_edges + 3)
      << "DGR " << dgr_run.metrics.overflow_edges << " vs CUGR2-lite "
      << base.metrics.overflow_edges;
  EXPECT_TRUE(dgr_run.solution.connects_all_pins());
}

TEST(Integration, FullPipelineProducesThreeDMetrics) {
  design::IspdLikeParams p;
  p.num_nets = 200;
  p.grid_w = p.grid_h = 20;
  p.layers = 5;
  const design::Design d = design::generate_ispd_like(p, 31);
  pipeline::RoutingContext ctx(d);
  pipeline::Pipeline pipe(ctx);
  pipeline::RouterOptions ro;
  ro.dgr.iterations = 120;
  ro.dgr.temperature_interval = 30;
  const pipeline::PipelineResult r = pipe.run(
      "dgr", ro, pipeline::StagePlan{.maze_refine = true, .layer_assign = true});
  EXPECT_GT(r.stats.solver_bytes, 0u);  // forest + relaxation + AD tape
  EXPECT_GT(r.layers.via_count, 0);
  EXPECT_GT(r.metrics.wirelength, 0);
  EXPECT_GE(r.weighted_overflow, 0.0);
  EXPECT_GT(r.stats.stage_seconds("train"), 0.0);
  EXPECT_GT(r.stats.stage_seconds("eval"), 0.0);
}

TEST(Integration, SavedDesignReproducesRoutingRun) {
  design::IspdLikeParams p;
  p.num_nets = 80;
  p.grid_w = p.grid_h = 16;
  const design::Design d = design::generate_ispd_like(p, 13);
  std::stringstream ss;
  design::write_design(ss, d);
  const design::Design r = design::read_design(ss);

  auto run = [](const design::Design& dd) {
    pipeline::RoutingContext ctx(dd);
    pipeline::Pipeline pipe(ctx);
    pipeline::RouterOptions ro;
    ro.dgr.iterations = 50;
    return pipe.run("dgr", ro, kRouteOnly).metrics;
  };
  const eval::Metrics a = run(d);
  const eval::Metrics b = run(r);
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(a.overflow_edges, b.overflow_edges);
  EXPECT_EQ(a.bends, b.bends);
}

TEST(Integration, SeedSpreadIsTightOnTable1Protocol) {
  // The paper reports DGR best == worst (to ~1e-5 relative) across 5 seeds on
  // the easy synthetic rows; assert a small absolute spread at test scale.
  Table1Case c = make_case(10, 2, 8, 4, 99);
  std::vector<double> results;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    pipeline::RouterOptions ro = table1_router_options(c, 300);
    ro.dgr.seed = seed;
    results.push_back(c.pipe->run("dgr", ro, kRouteOnly).metrics.total_overflow);
  }
  const double spread = *std::max_element(results.begin(), results.end()) -
                        *std::min_element(results.begin(), results.end());
  EXPECT_LE(spread, 1.0);
}

}  // namespace
}  // namespace dgr
